package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"ndnprivacy/internal/lint/cfg"
)

// DurUnits flags time.Duration conversions of bare numbers: a
// `time.Duration(n)` where n is a plain int/float variable with no
// duration provenance silently means *nanoseconds*, which is how a
// "50" that was meant as milliseconds becomes a 50ns timer feeding
// rt/netsim scheduling. A conversion passes when the dataflow can see
// units somewhere: the operand's definitions (followed backward through
// reaching definitions) involve a time.Duration value or unit constant
// (`gap := rng.ExpFloat64() * float64(meanDelay)`), the operand's type
// is a named type (domain types like netsim.Fixed carry their own
// units), the operand is a compile-time constant, or the conversion is
// immediately scaled by a unit (`time.Duration(ms) * time.Millisecond`).
var DurUnits = &Analyzer{
	Name: "durunits",
	Doc:  "flag time.Duration(x) where x is a bare number with no unit provenance (implicit nanoseconds)",
	Hint: "multiply by a unit (time.Duration(n) * time.Millisecond) or derive the operand from a time.Duration value",
	Run:  runDurUnits,
}

func runDurUnits(pass *Pass) {
	for _, file := range pass.Files {
		for _, fs := range funcScopes(file) {
			checkDurUnits(pass, fs)
		}
	}
}

func checkDurUnits(pass *Pass, fs funcScope) {
	g := fs.graph()
	reach := cfg.NewReaching(g, pass.Info, cfg.ParamVars(pass.Info, fs.recv, fs.ftype))
	parents := parentMap(fs.body)
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			walkNoFuncLit(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				if !isDurationConversion(pass.Info, call) {
					return true
				}
				operand := ast.Unparen(call.Args[0])
				if scaledByUnit(pass.Info, enclosingExpr(parents, call)) {
					return true
				}
				if isConstExpr(pass.Info, operand) {
					return true // the author wrote the number explicitly
				}
				if hasUnitProvenance(pass.Info, reach, operand, n, make(map[*ast.Ident]bool)) {
					return true
				}
				pass.Reportf(call.Pos(), "time.Duration(%s) converts a bare number (implicit nanoseconds); no unit in its dataflow", exprLabel(operand))
				return true
			})
		}
	}
}

// parentMap records each AST node's parent within root.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(m ast.Node) bool {
		if m == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[m] = stack[len(stack)-1]
		}
		stack = append(stack, m)
		return true
	})
	return parents
}

// enclosingExpr returns n's nearest non-paren ancestor.
func enclosingExpr(parents map[ast.Node]ast.Node, n ast.Node) ast.Node {
	p := parents[n]
	for {
		if _, ok := p.(*ast.ParenExpr); !ok {
			return p
		}
		p = parents[p]
	}
}

// isDurationConversion reports whether call converts to time.Duration.
func isDurationConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return false
	}
	return isDurationType(tv.Type)
}

// isDurationType reports whether t is time.Duration itself.
func isDurationType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == "Duration"
}

// scaledByUnit reports whether the conversion's enclosing expression
// multiplies it by a duration-typed value (time.Duration(ms) *
// time.Millisecond and friends).
func scaledByUnit(info *types.Info, parent ast.Node) bool {
	be, ok := parent.(*ast.BinaryExpr)
	if !ok || be.Op != token.MUL {
		return false
	}
	for _, side := range []ast.Expr{be.X, be.Y} {
		if t := info.TypeOf(side); t != nil && isDurationType(t) {
			if _, isConv := unwrapDurationConv(info, side); !isConv {
				return true
			}
		}
	}
	return false
}

// unwrapDurationConv reports whether e is itself a time.Duration(...)
// conversion (so `time.Duration(a) * time.Duration(b)` is not treated
// as unit-scaled by either side).
func unwrapDurationConv(info *types.Info, e ast.Expr) (*ast.CallExpr, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	if !isDurationConversion(info, call) {
		return nil, false
	}
	return call, true
}

// hasUnitProvenance reports whether units are visible anywhere in e's
// dataflow: a duration-typed subexpression, a named (non-basic) operand
// type, a compile-time constant, or — through reaching definitions —
// any definition whose right-hand side has provenance. Values the
// analysis cannot see (parameters, globals, call results without
// duration operands) are treated as unit-less: a seed of provenance
// must be syntactically present somewhere in the local flow.
func hasUnitProvenance(info *types.Info, reach *cfg.Reaching, e ast.Expr, at ast.Node, seen map[*ast.Ident]bool) bool {
	e = ast.Unparen(e)
	if t := info.TypeOf(e); t != nil {
		if _, ok := types.Unalias(t).(*types.Named); ok {
			return true // named domain type (netsim.Fixed, time.Duration)
		}
	}

	// Any duration-typed subexpression inside e — float64(d), int64(u.Jitter),
	// d.cfg.Timeout — is a unit seed.
	found := false
	walkNoFuncLit(e, func(m ast.Node) bool {
		if expr, ok := m.(ast.Expr); ok {
			if t := info.TypeOf(expr); t != nil && isDurationType(t) {
				found = true
			}
		}
		return !found
	})
	if found {
		return true
	}

	// Follow plain variables backward through their definitions. The
	// seen set is keyed by definition site, so loop-carried updates
	// (x += d in a loop) terminate while still letting a compound
	// assignment look through to the variable's earlier definitions.
	switch x := e.(type) {
	case *ast.Ident:
		v, ok := info.Uses[x].(*types.Var)
		if !ok {
			return false
		}
		for _, d := range reach.DefsOf(v, at) {
			if d.Ident == nil || seen[d.Ident] {
				continue // parameter entry def, or already traced
			}
			seen[d.Ident] = true
			if d.Rhs != nil && hasUnitProvenance(info, reach, d.Rhs, d.Node, seen) {
				return true
			}
			// x += e and x++ also carry the variable's prior value.
			if isCompoundDef(d.Node) && hasUnitProvenance(info, reach, x, d.Node, seen) {
				return true
			}
		}
		return false
	case *ast.BinaryExpr:
		return hasUnitProvenance(info, reach, x.X, at, seen) ||
			hasUnitProvenance(info, reach, x.Y, at, seen)
	case *ast.UnaryExpr:
		return hasUnitProvenance(info, reach, x.X, at, seen)
	case *ast.CallExpr:
		// Conversions and calls: provenance flows through arguments
		// (float64(d), math.Exp(mu + ...)).
		for _, arg := range x.Args {
			if hasUnitProvenance(info, reach, arg, at, seen) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// isConstExpr reports whether e is a compile-time constant (literal,
// named constant, or constant arithmetic).
func isConstExpr(info *types.Info, e ast.Expr) bool {
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return true
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if _, isConst := info.Uses[id].(*types.Const); isConst {
			return true
		}
	}
	return false
}

// exprLabel renders a short label for the flagged operand.
func exprLabel(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	default:
		return "..."
	}
}

package lint

import (
	"go/ast"
	"go/token"
	"sort"
)

// AllocCheck is the interprocedural allocation analysis: functions
// annotated //ndnlint:hotpath — the Interest/Data fast path whose
// latency the paper's cache-timing adversary measures — must be
// allocation-free, transitively through everything they call. The
// analysis builds a CHA call graph over the whole module, classifies
// every intrinsic allocation site (allocsites.go), summarizes external
// calls (allocgraph.go), and reports each reachable unwaived site with
// the hot-path witness chain that reaches it.
//
// //ndnlint:allow alloccheck on a site's line waives that site; on a
// call's line it also prunes the edge, so a deliberately-allocating
// branch (telemetry emission, eviction bookkeeping) is waived once at
// its entry call rather than once per transitive site.
var AllocCheck = &Analyzer{
	Name:      allocCheckName,
	Doc:       "//ndnlint:hotpath functions must be allocation-free through every call they can reach",
	Hint:      "hoist the allocation off the hot path, or waive the line with //ndnlint:allow alloccheck — reason",
	RunModule: runAllocCheck,
}

func runAllocCheck(pass *ModulePass) {
	var files []*ast.File
	for _, u := range pass.Units {
		files = append(files, u.Files...)
	}
	g := buildAllocGraph(pass.Fset, pass.Units)
	g.markWaivers(collectAllows(pass.Fset, files))

	reported := make(map[token.Pos]bool)
	for _, root := range g.hotpathRoots() {
		g.reportHotpath(pass, root, reported)
	}
}

// hotpathRoots returns every annotated function in source order, so
// witness chains and first-reporter-wins dedup are deterministic.
func (g *allocGraph) hotpathRoots() []*funcNode {
	var roots []*funcNode
	for _, n := range g.nodes {
		if n.hotpath {
			roots = append(roots, n)
		}
	}
	sort.Slice(roots, func(i, j int) bool {
		a, b := g.fset.Position(roots[i].decl.Pos()), g.fset.Position(roots[j].decl.Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return roots
}

// reportHotpath walks the call graph breadth-first from root over
// unwaived edges, reporting every unwaived allocation site it reaches
// with the call chain that witnesses reachability. Sites already
// reported for an earlier root are skipped: one fix, one finding.
func (g *allocGraph) reportHotpath(pass *ModulePass, root *funcNode, reported map[token.Pos]bool) {
	type item struct {
		node  *funcNode
		chain string
	}
	seen := map[*funcNode]bool{root: true}
	queue := []item{{root, shortFuncName(root.fn)}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		for _, site := range it.node.sites {
			if site.waived || reported[site.pos] {
				continue
			}
			reported[site.pos] = true
			pass.Reportf(site.pos, "%s (hot path: %s)", site.msg, it.chain)
		}
		for i := range it.node.calls {
			call := &it.node.calls[i]
			if call.waived {
				continue
			}
			for _, callee := range call.callees {
				next := g.nodes[callee]
				if next == nil || seen[next] {
					continue
				}
				seen[next] = true
				queue = append(queue, item{next, it.chain + " → " + shortFuncName(callee)})
			}
		}
	}
}

// computeVerdicts propagates may-allocate to a fixpoint over the whole
// graph (independent of hotpath annotations): a function may allocate
// if it has an unwaived intrinsic site or calls, through an unwaived
// edge, a function that may allocate.
func (g *allocGraph) computeVerdicts() {
	for _, n := range g.nodes {
		for _, site := range n.sites {
			if !site.waived {
				n.mayAlloc = true
				break
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.nodes {
			if n.mayAlloc {
				continue
			}
			for i := range n.calls {
				call := &n.calls[i]
				if call.waived {
					continue
				}
				for _, callee := range call.callees {
					if next := g.nodes[callee]; next != nil && next.mayAlloc {
						n.mayAlloc = true
						changed = true
						break
					}
				}
				if n.mayAlloc {
					break
				}
			}
		}
	}
}

// MayAllocate runs the allocation analysis over the units and returns
// the per-function verdicts keyed by types.Func.FullName — the hook the
// precision tests cross-validate against testing.AllocsPerRun.
func MayAllocate(fset *token.FileSet, units []*Unit) map[string]bool {
	var files []*ast.File
	for _, u := range units {
		files = append(files, u.Files...)
	}
	g := buildAllocGraph(fset, units)
	g.markWaivers(collectAllows(fset, files))
	g.computeVerdicts()
	out := make(map[string]bool, len(g.nodes))
	for fn, n := range g.nodes {
		out[fn.FullName()] = n.mayAlloc
	}
	return out
}

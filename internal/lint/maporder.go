package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags `for range` over a map inside the deterministic
// packages when the loop body does something order-sensitive: appends to
// a slice, schedules a simulator event, or writes output. Go randomizes
// map iteration order per run, so any of those leaks nondeterminism
// straight into event schedules or report bytes. Order-independent
// bodies (counting, deleting, set union) pass untouched, and a
// range-collect is accepted when the collected slice is sorted by a
// later statement in the same block (`sort.*` / `slices.Sort*`).
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag order-sensitive iteration over maps in deterministic packages",
	Hint: "collect keys into a slice, sort them, and iterate the sorted slice (or sort the collected result before use)",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	if !isDeterministicPkg(pass.Pkg.Path()) {
		return
	}
	for _, file := range pass.Files {
		for _, list := range stmtLists(file) {
			for i, stmt := range list {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok {
					continue
				}
				if _, isMap := pass.Info.TypeOf(rs.X).Underlying().(*types.Map); !isMap {
					continue
				}
				checkMapRange(pass, rs, list[i+1:])
			}
		}
	}
}

// stmtLists yields every statement list in the file, so a range stmt can
// be examined together with the statements that follow it.
func stmtLists(file *ast.File) [][]ast.Stmt {
	var lists [][]ast.Stmt
	ast.Inspect(file, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.BlockStmt:
			lists = append(lists, s.List)
		case *ast.CaseClause:
			lists = append(lists, s.Body)
		case *ast.CommClause:
			lists = append(lists, s.Body)
		}
		return true
	})
	return lists
}

// mapEffect is one order-sensitive operation inside a map-range body.
type mapEffect struct {
	pos    token.Pos
	desc   string
	target string // non-empty for appends: the slice being grown
}

func checkMapRange(pass *Pass, rs *ast.RangeStmt, tail []ast.Stmt) {
	var effects []mapEffect
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if b, ok := pass.Info.Uses[fun].(*types.Builtin); ok && b.Name() == "append" && len(call.Args) > 0 {
				effects = append(effects, mapEffect{
					pos:    call.Pos(),
					desc:   "appends to " + types.ExprString(call.Args[0]),
					target: types.ExprString(call.Args[0]),
				})
			}
		case *ast.SelectorExpr:
			name := fun.Sel.Name
			fn := funcObj(pass.Info, fun.Sel)
			switch {
			case name == "Schedule":
				effects = append(effects, mapEffect{pos: call.Pos(), desc: "schedules a simulator event"})
			case pkgPathOf(fn) == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")):
				effects = append(effects, mapEffect{pos: call.Pos(), desc: "writes output via fmt." + name})
			case strings.HasPrefix(name, "Write") && fn != nil && fn.Pkg() != nil:
				effects = append(effects, mapEffect{pos: call.Pos(), desc: "writes output via ." + name})
			}
		}
		return true
	})
	for _, e := range effects {
		if e.target != "" && sortedAfter(pass, tail, e.target) {
			continue
		}
		pass.Reportf(e.pos, "iteration over map %s is order-randomized but the body %s", types.ExprString(rs.X), e.desc)
	}
}

// sortedAfter reports whether a statement after the range sorts the
// collected slice, which restores determinism.
func sortedAfter(pass *Pass, tail []ast.Stmt, target string) bool {
	for _, stmt := range tail {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path := pkgPathOf(funcObj(pass.Info, sel.Sel))
			if path != "sort" && path != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if strings.Contains(types.ExprString(arg), target) {
					found = true
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

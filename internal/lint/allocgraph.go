package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds alloccheck's interprocedural view: call-edge
// recording during the body walk, external-function summaries, and the
// whole-module call graph with class-hierarchy-analysis resolution of
// interface dispatch.

// An allocCall is one call edge out of a function body, either to a
// statically known function or through an interface method (resolved by
// CHA once every module type is known).
type allocCall struct {
	pos token.Pos
	// static is the direct callee, nil for interface dispatch.
	static *types.Func
	// iface/method describe an interface dispatch site.
	iface  *types.Interface
	method string
	// label names the callee for messages (pkg.Func, (*T).M, I.M).
	label string
	// callees is filled by resolveAll: module-internal targets.
	callees []*types.Func
	// waived records an //ndnlint:allow alloccheck directive on the call
	// line; it prunes the edge so waived calls hide their subtree.
	waived bool
}

// A funcNode is one declared function in the allocation call graph.
type funcNode struct {
	fn    *types.Func
	decl  *ast.FuncDecl
	file  *ast.File
	sites []allocSite
	calls []allocCall
	// hotpath marks a //ndnlint:hotpath annotation on the declaration.
	hotpath bool
	// mayAlloc is the propagated verdict (computeVerdicts).
	mayAlloc bool
}

// An allocGraph is the whole-module allocation call graph.
type allocGraph struct {
	fset  *token.FileSet
	nodes map[*types.Func]*funcNode
	// named lists every non-generic named type for CHA, sorted for
	// deterministic dispatch resolution.
	named []*types.Named
	// module is the set of packages under analysis.
	module map[*types.Package]bool
}

// buildAllocGraph walks every function declaration of every unit.
func buildAllocGraph(fset *token.FileSet, units []*Unit) *allocGraph {
	g := &allocGraph{
		fset:   fset,
		nodes:  make(map[*types.Func]*funcNode),
		module: make(map[*types.Package]bool),
	}
	for _, u := range units {
		g.module[u.Pkg] = true
	}
	for _, u := range units {
		scope := u.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || named.TypeParams().Len() > 0 {
				continue // generic types have no ready method set
			}
			g.named = append(g.named, named)
		}
	}
	sort.Slice(g.named, func(i, j int) bool {
		a, b := g.named[i].Obj(), g.named[j].Obj()
		if a.Pkg().Path() != b.Pkg().Path() {
			return a.Pkg().Path() < b.Pkg().Path()
		}
		return a.Name() < b.Name()
	})
	for _, u := range units {
		for _, f := range u.Files {
			for _, d := range f.Decls {
				fd, isFunc := d.(*ast.FuncDecl)
				if !isFunc || fd.Body == nil {
					continue
				}
				obj, isDef := u.Info.Defs[fd.Name].(*types.Func)
				if !isDef {
					continue
				}
				c := &siteCollector{
					fset:    fset,
					info:    u.Info,
					results: resultsOf(obj),
					parents: parentMap(fd),
					module:  g.module,
				}
				c.collectBody(fd.Body)
				g.nodes[obj] = &funcNode{
					fn:      obj,
					decl:    fd,
					file:    f,
					sites:   c.sites,
					calls:   c.calls,
					hotpath: hasHotpathDirective(fset, f, fd),
				}
			}
		}
	}
	g.resolveAll()
	return g
}

// resolveAll fills in every call's callee list. Interface dispatches
// with no module implementation degrade to an intrinsic assumed-alloc
// site on the caller (the target is outside the analyzed world).
func (g *allocGraph) resolveAll() {
	for _, n := range g.nodes {
		for i := range n.calls {
			call := &n.calls[i]
			if call.static != nil {
				if g.nodes[call.static] != nil {
					call.callees = []*types.Func{call.static}
				} else if clean, reason := externSummary(call.static); !clean {
					// A module function without a body in the unit set
					// (or summary gap) is treated like an external.
					n.sites = append(n.sites, allocSite{pos: call.pos, kind: "extern", msg: reason})
				}
				continue
			}
			call.callees = g.implementers(call.iface, call.method)
			if len(call.callees) == 0 {
				n.sites = append(n.sites, allocSite{
					pos:  call.pos,
					kind: "dynamic",
					msg:  fmt.Sprintf("interface call %s.%s has no implementation inside the module (assumed to allocate)", call.label, call.method),
				})
			}
		}
	}
}

// implementers returns every module method that an interface dispatch
// of method on iface can reach, in deterministic order.
func (g *allocGraph) implementers(iface *types.Interface, method string) []*types.Func {
	var out []*types.Func
	for _, named := range g.named {
		var recv types.Type
		switch {
		case types.Implements(named, iface):
			recv = named
		case types.Implements(types.NewPointer(named), iface):
			recv = types.NewPointer(named)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, named.Obj().Pkg(), method)
		fn, isFunc := obj.(*types.Func)
		if !isFunc {
			continue
		}
		fn = fn.Origin()
		// Promoted methods of embedded external types stay outside the
		// graph; the closed-world assumption covers module code only.
		if g.nodes[fn] != nil {
			out = append(out, fn)
		}
	}
	return out
}

// allocCheckName is AllocCheck's name as a constant, so graph code can
// consult the allow index without an initialization cycle.
const allocCheckName = "alloccheck"

// markWaivers applies //ndnlint:allow alloccheck directives: a directive
// covering a site's line waives the site, one covering a call's line
// prunes the edge (the callee subtree is the author's responsibility).
func (g *allocGraph) markWaivers(allows *allowIndex) {
	for _, n := range g.nodes {
		for i := range n.sites {
			pos := g.fset.Position(n.sites[i].pos)
			if allows.allows(pos.Filename, pos.Line, allocCheckName) {
				n.sites[i].waived = true
			}
		}
		for i := range n.calls {
			pos := g.fset.Position(n.calls[i].pos)
			if allows.allows(pos.Filename, pos.Line, allocCheckName) {
				n.calls[i].waived = true
			}
		}
	}
}

// recordCall classifies a call to a named function, method, or function
// value: module-internal targets become graph edges, externals consult
// the summaries, and dynamic calls are assumed to allocate.
func (c *siteCollector) recordCall(call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)

	if sel, isSel := fun.(*ast.SelectorExpr); isSel {
		if s := c.info.Selections[sel]; s != nil {
			switch s.Kind() {
			case types.MethodVal:
				fn, isFunc := s.Obj().(*types.Func)
				if !isFunc {
					break
				}
				fn = fn.Origin()
				recv := s.Recv()
				if iface, isIface := recv.Underlying().(*types.Interface); isIface {
					c.calls = append(c.calls, allocCall{
						pos:    call.Pos(),
						iface:  iface,
						method: fn.Name(),
						label:  types.TypeString(recv, shortQualifier),
					})
					c.argEffects(call, signatureOf(fn))
					return
				}
				c.edgeTo(call, fn)
				return
			case types.FieldVal:
				c.add(call.Pos(), "indirect", "call through function field %s (assumed to allocate)", sel.Sel.Name)
				return
			}
		}
	}

	if id := calleeIdent(fun); id != nil {
		switch obj := c.info.Uses[id].(type) {
		case *types.Func:
			c.edgeTo(call, obj.Origin())
			return
		case *types.Var:
			c.add(call.Pos(), "indirect", "call through function value %s (assumed to allocate)", id.Name)
			return
		}
	}

	// Calls of call results, method values, etc.: no static target.
	c.add(call.Pos(), "indirect", "dynamic call (assumed to allocate)")
}

// edgeTo records a direct call: a graph edge for module functions, a
// summary lookup for externals.
func (c *siteCollector) edgeTo(call *ast.CallExpr, fn *types.Func) {
	if fn.Pkg() != nil && c.module[fn.Pkg()] {
		c.calls = append(c.calls, allocCall{
			pos:    call.Pos(),
			static: fn,
			label:  shortFuncName(fn),
		})
		c.argEffects(call, signatureOf(fn))
		return
	}
	clean, reason := externSummary(fn)
	if clean {
		c.argEffects(call, signatureOf(fn))
		return
	}
	// The call is flagged once; boxing its arguments would pile
	// secondary findings onto the same fix.
	c.add(call.Pos(), "extern", "%s", reason)
}

// argEffects flags boxing into interface parameters and variadic
// argument packing for a call whose target itself is accounted for.
func (c *siteCollector) argEffects(call *ast.CallExpr, sig *types.Signature) {
	if sig == nil {
		return
	}
	params := sig.Params()
	n := params.Len()
	if !sig.Variadic() {
		for i := 0; i < n && i < len(call.Args); i++ {
			c.boxingCheck(call.Args[i], params.At(i).Type(), "argument")
		}
		return
	}
	for i := 0; i < n-1 && i < len(call.Args); i++ {
		c.boxingCheck(call.Args[i], params.At(i).Type(), "argument")
	}
	if call.Ellipsis.IsValid() {
		return // xs... passes the existing slice through
	}
	if len(call.Args) >= n {
		c.add(call.Args[n-1].Pos(), "variadic", "variadic call packs %d argument(s) into a slice", len(call.Args)-n+1)
		if st, isSlice := params.At(n - 1).Type().Underlying().(*types.Slice); isSlice {
			for i := n - 1; i < len(call.Args); i++ {
				c.boxingCheck(call.Args[i], st.Elem(), "argument")
			}
		}
	}
}

// signatureOf returns fn's signature, nil when unavailable.
func signatureOf(fn *types.Func) *types.Signature {
	sig, _ := fn.Type().(*types.Signature)
	return sig
}

// resultsOf returns fn's result tuple, nil for result-less functions.
func resultsOf(fn *types.Func) *types.Tuple {
	sig := signatureOf(fn)
	if sig == nil || sig.Results().Len() == 0 {
		return nil
	}
	return sig.Results()
}

// shortFuncName renders fn as pkg.Func or (recv).Method without import
// paths, for witness chains and budget keys.
func shortFuncName(fn *types.Func) string {
	sig := signatureOf(fn)
	if sig != nil && sig.Recv() != nil {
		return fmt.Sprintf("(%s).%s", types.TypeString(sig.Recv().Type(), shortQualifier), fn.Name())
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// hotpathDirective marks a function whose whole call tree must be
// allocation-free.
const hotpathDirective = "//ndnlint:hotpath"

// hasHotpathDirective reports whether decl carries //ndnlint:hotpath in
// its doc comment or on the line directly above the declaration.
func hasHotpathDirective(fset *token.FileSet, file *ast.File, decl *ast.FuncDecl) bool {
	if decl.Doc != nil {
		for _, com := range decl.Doc.List {
			if isHotpathComment(com.Text) {
				return true
			}
		}
	}
	declLine := fset.Position(decl.Pos()).Line
	for _, cg := range file.Comments {
		for _, com := range cg.List {
			if isHotpathComment(com.Text) && fset.Position(com.Pos()).Line == declLine-1 {
				return true
			}
		}
	}
	return false
}

// isHotpathComment reports whether text is the hotpath directive,
// optionally followed by free-form justification.
func isHotpathComment(text string) bool {
	if !strings.HasPrefix(text, hotpathDirective) {
		return false
	}
	rest := strings.TrimPrefix(text, hotpathDirective)
	return rest == "" || rest[0] == ' ' || rest[0] == '\t'
}

// --- external summaries -------------------------------------------------

// cleanPkgs are standard-library packages none of whose exported
// functions allocate.
var cleanPkgs = map[string]bool{
	"sync/atomic": true,
	"math":        true,
	"math/bits":   true,
}

// cleanFuncs are individually vetted allocation-free standard-library
// functions and methods, keyed by types.Func.FullName.
var cleanFuncs = map[string]bool{
	// math/rand: generator draws mutate internal state, no heap.
	"(*math/rand.Rand).Float64":     true,
	"(*math/rand.Rand).Float32":     true,
	"(*math/rand.Rand).ExpFloat64":  true,
	"(*math/rand.Rand).NormFloat64": true,
	"(*math/rand.Rand).Int":         true,
	"(*math/rand.Rand).Int31":       true,
	"(*math/rand.Rand).Int31n":      true,
	"(*math/rand.Rand).Int63":       true,
	"(*math/rand.Rand).Int63n":      true,
	"(*math/rand.Rand).Intn":        true,
	"(*math/rand.Rand).Uint32":      true,
	"(*math/rand.Rand).Uint64":      true,

	// container/list: traversal and unlinking reuse existing elements
	// (PushFront/PushBack/InsertAfter allocate and are absent here).
	"(*container/list.List).Back":        true,
	"(*container/list.List).Front":       true,
	"(*container/list.List).Len":         true,
	"(*container/list.List).MoveToBack":  true,
	"(*container/list.List).MoveToFront": true,
	"(*container/list.List).Remove":      true,
	"(*container/list.Element).Next":     true,
	"(*container/list.Element).Prev":     true,

	// strings/bytes: comparisons, searches, and sub-slicing trims.
	"strings.Compare":       true,
	"strings.Contains":      true,
	"strings.Count":         true,
	"strings.Cut":           true,
	"strings.EqualFold":     true,
	"strings.HasPrefix":     true,
	"strings.HasSuffix":     true,
	"strings.Index":         true,
	"strings.IndexByte":     true,
	"strings.IndexRune":     true,
	"strings.LastIndex":     true,
	"strings.LastIndexByte": true,
	"strings.TrimPrefix":    true,
	"strings.TrimSuffix":    true,
	"strings.TrimSpace":     true,
	"strings.TrimLeft":      true,
	"strings.TrimRight":     true,
	"bytes.Compare":         true,
	"bytes.Contains":        true,
	"bytes.Equal":           true,
	"bytes.HasPrefix":       true,
	"bytes.HasSuffix":       true,
	"bytes.Index":           true,
	"bytes.IndexByte":       true,

	// encoding/binary: fixed-width loads and stores on caller buffers
	// (AppendUint* are absent: they may grow the slice).
	"(encoding/binary.bigEndian).Uint16":       true,
	"(encoding/binary.bigEndian).Uint32":       true,
	"(encoding/binary.bigEndian).Uint64":       true,
	"(encoding/binary.bigEndian).PutUint16":    true,
	"(encoding/binary.bigEndian).PutUint32":    true,
	"(encoding/binary.bigEndian).PutUint64":    true,
	"(encoding/binary.littleEndian).Uint16":    true,
	"(encoding/binary.littleEndian).Uint32":    true,
	"(encoding/binary.littleEndian).Uint64":    true,
	"(encoding/binary.littleEndian).PutUint16": true,
	"(encoding/binary.littleEndian).PutUint32": true,
	"(encoding/binary.littleEndian).PutUint64": true,

	// sort: binary searches over caller-provided closures.
	"sort.Search":         true,
	"sort.SearchInts":     true,
	"sort.SearchStrings":  true,
	"sort.SearchFloat64s": true,

	// time: value arithmetic (Duration.String is absent: it allocates).
	"(time.Duration).Hours":        true,
	"(time.Duration).Microseconds": true,
	"(time.Duration).Milliseconds": true,
	"(time.Duration).Minutes":      true,
	"(time.Duration).Nanoseconds":  true,
	"(time.Duration).Round":        true,
	"(time.Duration).Seconds":      true,
	"(time.Duration).Truncate":     true,
	"(time.Time).Add":              true,
	"(time.Time).After":            true,
	"(time.Time).Before":           true,
	"(time.Time).Equal":            true,
	"(time.Time).Sub":              true,
	"(time.Time).UnixNano":         true,
	"time.Now":                     true,
	"time.Since":                   true,

	// sync: uncontended lock words.
	"(*sync.Mutex).Lock":      true,
	"(*sync.Mutex).TryLock":   true,
	"(*sync.Mutex).Unlock":    true,
	"(*sync.RWMutex).Lock":    true,
	"(*sync.RWMutex).RLock":   true,
	"(*sync.RWMutex).RUnlock": true,
	"(*sync.RWMutex).TryLock": true,
	"(*sync.RWMutex).Unlock":  true,
}

// externSummary classifies a call to a function outside the analyzed
// module: (true, "") for vetted allocation-free functions, otherwise
// (false, reason) — unknown externals are assumed to allocate.
func externSummary(fn *types.Func) (clean bool, reason string) {
	path := pkgPathOf(fn)
	if cleanPkgs[path] {
		return true, ""
	}
	if cleanFuncs[fn.FullName()] {
		return true, ""
	}
	switch path {
	case "fmt", "reflect":
		return false, fmt.Sprintf("%s call %s allocates", path, shortFuncName(fn))
	}
	return false, fmt.Sprintf("call to %s (external, assumed to allocate; waive or add a summary)", shortFuncName(fn))
}

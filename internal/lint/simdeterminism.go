package lint

import (
	"go/ast"
)

// SimDeterminism forbids reading or arming the wall clock inside the
// deterministic packages. Simulated code must take time from the
// executor's virtual clock (netsim.Simulator.Now / fwd.Executor.Now);
// one stray time.Now in a hot path silently skews every timing
// distribution the repo reproduces. internal/rt and internal/netface
// are the designated real-time boundary and are not checked.
var SimDeterminism = &Analyzer{
	Name: "simdeterminism",
	Doc:  "forbid wall-clock use (time.Now, time.Sleep, timers, ...) in deterministic packages",
	Hint: "take time from the injected Executor/Simulator virtual clock, or move the code behind the internal/rt / internal/netface real-time boundary",
	Run:  runSimDeterminism,
}

// wallClockFuncs are the package-level time functions that observe or
// depend on the wall clock. time.Duration arithmetic and constants stay
// legal: only these entry points leak real time.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

func runSimDeterminism(pass *Pass) {
	if !isDeterministicPkg(pass.Pkg.Path()) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn := funcObj(pass.Info, id)
			if fn == nil || pkgPathOf(fn) != "time" || !wallClockFuncs[fn.Name()] {
				return true
			}
			pass.Reportf(id.Pos(), "time.%s reads the wall clock inside deterministic package %s", fn.Name(), pass.Pkg.Path())
			return true
		})
	}
}

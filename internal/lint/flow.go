package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"ndnprivacy/internal/lint/cfg"
)

// funcScope is one analyzable function body: a declaration or a
// function literal. Literals are analyzed as functions in their own
// right — their bodies execute at some unrelated time, so flow facts
// (held locks, reaching definitions) never carry across the boundary.
type funcScope struct {
	decl  *ast.FuncDecl // nil for literals
	lit   *ast.FuncLit  // nil for declarations
	recv  *ast.FieldList
	ftype *ast.FuncType
	body  *ast.BlockStmt
}

// name returns the declared function name, or "" for literals.
func (fs funcScope) name() string {
	if fs.decl != nil {
		return fs.decl.Name.Name
	}
	return ""
}

// node returns the scope's AST node (for span tests).
func (fs funcScope) node() ast.Node {
	if fs.decl != nil {
		return fs.decl
	}
	return fs.lit
}

// declaredIn reports whether v's declaration lies inside this scope —
// distinguishing a literal's own locals from captured outer variables.
func (fs funcScope) declaredIn(v *types.Var) bool {
	n := fs.node()
	return v.Pos() >= n.Pos() && v.Pos() < n.End()
}

// funcScopes enumerates every function body in the file: declarations
// and all function literals, however nested.
func funcScopes(file *ast.File) []funcScope {
	var scopes []funcScope
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				scopes = append(scopes, funcScope{decl: fn, recv: fn.Recv, ftype: fn.Type, body: fn.Body})
			}
		case *ast.FuncLit:
			scopes = append(scopes, funcScope{lit: fn, ftype: fn.Type, body: fn.Body})
		}
		return true
	})
	return scopes
}

// graph builds the scope's CFG.
func (fs funcScope) graph() *cfg.Graph { return cfg.New(fs.body) }

// walkNoFuncLit visits n's subtree in source order, skipping function
// literal bodies (their statements belong to a different funcScope).
func walkNoFuncLit(n ast.Node, visit func(ast.Node) bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		return visit(m)
	})
}

// fieldChain decomposes a selector chain x.a.b into its base variable
// and the joined field path "a.b". The base must be a plain identifier
// naming a variable; every link must be a struct field selection.
func fieldChain(info *types.Info, e ast.Expr) (base *types.Var, path string, ok bool) {
	var fields []string
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			sel := info.Selections[x]
			if sel == nil || sel.Kind() != types.FieldVal {
				return nil, "", false
			}
			fields = append([]string{x.Sel.Name}, fields...)
			e = x.X
		case *ast.Ident:
			v, ok := info.Uses[x].(*types.Var)
			if !ok || len(fields) == 0 {
				return nil, "", false
			}
			return v, strings.Join(fields, "."), true
		default:
			return nil, "", false
		}
	}
}

// isCompoundDef reports whether def node n rewrites its targets in
// terms of their previous value (x += e, x++), so provenance tracing
// must also follow the variable's earlier definitions.
func isCompoundDef(n ast.Node) bool {
	switch s := n.(type) {
	case *ast.AssignStmt:
		return s.Tok != token.ASSIGN && s.Tok != token.DEFINE
	case *ast.IncDecStmt:
		return true
	}
	return false
}

// isErrorType reports whether t is the builtin error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// namedStruct resolves t (through pointers and aliases) to a named
// struct type, or nil.
func namedStruct(t types.Type) (*types.Named, *types.Struct) {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	return named, st
}

// freshlyConstructed reports whether every definition of v inside the
// scope assigns a newly created value (&T{...}, T{...}, or new(T)) —
// the constructor-pattern exemption: a value that this function just
// built is not yet shared, so its fields need no lock here. A variable
// with any other kind of definition (or none visible) does not qualify.
func freshlyConstructed(fs funcScope, info *types.Info, v *types.Var) bool {
	if !fs.declaredIn(v) {
		return false
	}
	found := false
	fresh := true
	walkNoFuncLit(fs.body, func(n ast.Node) bool {
		defs, _ := cfg.Refs(n, info)
		for _, d := range defs {
			if d.Obj != v {
				continue
			}
			found = true
			if d.Rhs == nil || !isFreshExpr(d.Rhs) {
				fresh = false
			}
		}
		return true
	})
	return found && fresh
}

// isFreshExpr reports whether e creates a brand-new value.
func isFreshExpr(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		return x.Op.String() == "&" && isFreshExpr(x.X)
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

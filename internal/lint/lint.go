// Package lint is ndnprivacy's project-specific static analysis. Every
// figure this repository reproduces depends on the discrete-event
// simulator being bit-for-bit deterministic under a fixed seed, so the
// invariants that convention alone used to guard — no wall clock inside
// simulated packages, no global math/rand, no map-iteration order
// leaking into event schedules or reports, no locks copied by value, no
// silently dropped wire-format errors — are mechanized here on top of
// the standard library go/ast + go/types toolchain (no external
// dependencies, offline-buildable).
//
// Each check is a self-contained *Analyzer; future checks are one file
// implementing Run over a type-checked package and one entry in All.
// Findings can be suppressed with a trailing comment on the offending
// line, or a comment on the line directly above it:
//
//	//ndnlint:allow simdeterminism — measured at the rt boundary
//
// The comment names one or more checks, comma separated, or "all".
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	// Name identifies the check in reports and in //ndnlint:allow
	// suppression comments. Lowercase, no spaces.
	Name string
	// Doc is a one-line description of what the check enforces.
	Doc string
	// Hint tells a developer how to fix a finding from this check.
	Hint string
	// Run inspects one package and reports findings through the pass.
	// Nil for module-level analyzers.
	Run func(*Pass)
	// RunModule, when set, runs once over every loaded package together.
	// It is how whole-program analyses (alloccheck's interprocedural
	// call graph) see across package boundaries; Run may be nil then.
	RunModule func(*ModulePass)
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer *Analyzer
	findings *[]Finding
}

// A Unit is one type-checked package inside a module-level pass. All
// units of one pass share a single token.FileSet.
type Unit struct {
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// A ModulePass carries every loaded package through one module-level
// analyzer at once.
type ModulePass struct {
	Fset  *token.FileSet
	Units []*Unit

	analyzer *Analyzer
	findings *[]Finding
}

// Reportf records a module-pass finding at pos using the analyzer's
// default hint.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		Check:   p.analyzer.Name,
		Pos:     position,
		File:    position.Filename,
		Line:    position.Line,
		Column:  position.Column,
		Message: fmt.Sprintf(format, args...),
		Hint:    p.analyzer.Hint,
	})
}

// A Finding is one rule violation at one source position.
type Finding struct {
	Check   string         `json:"check"`
	Pos     token.Position `json:"-"`
	File    string         `json:"file"`
	Line    int            `json:"line"`
	Column  int            `json:"column"`
	Message string         `json:"message"`
	Hint    string         `json:"hint,omitempty"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	s := fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Column, f.Check, f.Message)
	if f.Hint != "" {
		s += " (fix: " + f.Hint + ")"
	}
	return s
}

// Reportf records a finding at pos using the analyzer's default hint.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		Check:   p.analyzer.Name,
		Pos:     position,
		File:    position.Filename,
		Line:    position.Line,
		Column:  position.Column,
		Message: fmt.Sprintf(format, args...),
		Hint:    p.analyzer.Hint,
	})
}

// All is every check this linter ships, in reporting order. The first
// five are single-node AST checks; the next four are flow-sensitive,
// built on the internal/lint/cfg dataflow engine; alloccheck and
// viewsafe are the module-level (interprocedural) analyses.
var All = []*Analyzer{
	SimDeterminism,
	GlobalRand,
	MapOrder,
	CopyLocks,
	WireErr,
	GuardedBy,
	SeedFlow,
	ErrShadow,
	DurUnits,
	AllocCheck,
	ViewSafe,
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Check runs every analyzer in checks over one type-checked package and
// returns surviving findings: suppressed ones are dropped, the rest are
// sorted by position then check name. Module-level analyzers see the
// single package as the whole program.
func Check(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, checks []*Analyzer) []Finding {
	return CheckUnits(fset, []*Unit{{Files: files, Pkg: pkg, Info: info}}, checks)
}

// CheckUnits runs every analyzer over the given set of type-checked
// packages: per-package analyzers run once per unit, module-level
// analyzers once over all units together (the call graph alloccheck
// propagates over is only as complete as the unit set, so whole-tree
// invocations should pass every module package). Suppressed findings
// are dropped, the rest sorted by position then check name.
func CheckUnits(fset *token.FileSet, units []*Unit, checks []*Analyzer) []Finding {
	var findings []Finding
	for _, a := range checks {
		if a.Run != nil {
			for _, u := range units {
				a.Run(&Pass{
					Fset:     fset,
					Files:    u.Files,
					Pkg:      u.Pkg,
					Info:     u.Info,
					analyzer: a,
					findings: &findings,
				})
			}
		}
		if a.RunModule != nil {
			a.RunModule(&ModulePass{
				Fset:     fset,
				Units:    units,
				analyzer: a,
				findings: &findings,
			})
		}
	}
	var allFiles []*ast.File
	for _, u := range units {
		allFiles = append(allFiles, u.Files...)
	}
	findings = suppress(fset, allFiles, findings)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Check < b.Check
	})
	return findings
}

// allowDirective is the comment prefix that suppresses findings.
const allowDirective = "//ndnlint:allow"

// An allowIndex records every //ndnlint:allow directive in a file set:
// statement-scoped directives by file and line, file-scoped directives
// (any directive above the package clause, for generated or fixture
// files) by file alone.
type allowIndex struct {
	// lines maps file → line → set of allowed check names.
	lines map[string]map[int]map[string]bool
	// files maps file → set of check names allowed for the whole file.
	files map[string]map[string]bool
}

// collectAllows indexes the allow directives of every file.
func collectAllows(fset *token.FileSet, files []*ast.File) *allowIndex {
	ix := &allowIndex{
		lines: make(map[string]map[int]map[string]bool),
		files: make(map[string]map[string]bool),
	}
	for _, f := range files {
		pkgLine := fset.Position(f.Package).Line
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				checks, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				if pos.Line < pkgLine {
					// Above the package clause: file-scoped.
					set := ix.files[pos.Filename]
					if set == nil {
						set = make(map[string]bool)
						ix.files[pos.Filename] = set
					}
					for _, name := range checks {
						set[name] = true
					}
					continue
				}
				byLine := ix.lines[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					ix.lines[pos.Filename] = byLine
				}
				if byLine[pos.Line] == nil {
					byLine[pos.Line] = make(map[string]bool)
				}
				for _, name := range checks {
					byLine[pos.Line][name] = true
				}
			}
		}
	}
	return ix
}

// allows reports whether a finding of check at file:line is suppressed:
// by a directive on the same line, on the line directly above, or by a
// file-scoped directive.
func (ix *allowIndex) allows(file string, line int, check string) bool {
	if lineAllows(ix.files[file], check) {
		return true
	}
	byLine := ix.lines[file]
	return lineAllows(byLine[line], check) || lineAllows(byLine[line-1], check)
}

// suppress drops findings covered by an //ndnlint:allow comment on the
// same line, the line directly above, or above the file's package
// clause (file scope).
func suppress(fset *token.FileSet, files []*ast.File, findings []Finding) []Finding {
	ix := collectAllows(fset, files)
	kept := findings[:0]
	for _, fd := range findings {
		if ix.allows(fd.File, fd.Line, fd.Check) {
			continue
		}
		kept = append(kept, fd)
	}
	return kept
}

func lineAllows(set map[string]bool, check string) bool {
	return set != nil && (set[check] || set["all"])
}

// parseAllow extracts the check names from an //ndnlint:allow comment.
// Anything after " — " or " -- " is free-form justification.
func parseAllow(text string) ([]string, bool) {
	if !strings.HasPrefix(text, allowDirective) {
		return nil, false
	}
	rest := strings.TrimPrefix(text, allowDirective)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, false // e.g. //ndnlint:allowed — not the directive
	}
	for _, sep := range []string{" — ", " -- "} {
		if i := strings.Index(rest, sep); i >= 0 {
			rest = rest[:i]
		}
	}
	var checks []string
	for _, name := range strings.Split(rest, ",") {
		if name = strings.TrimSpace(name); name != "" {
			checks = append(checks, name)
		}
	}
	return checks, len(checks) > 0
}

// deterministicPkgs are the packages that must run identically for a
// fixed seed: everything the simulator clock or experiment reports can
// observe. internal/rt and internal/netface are the designated
// real-time boundary and are deliberately absent.
var deterministicPkgs = []string{
	"internal/netsim",
	"internal/fwd",
	"internal/attack",
	"internal/experiments",
	"internal/core",
	"internal/cache",
	"internal/cache/tiered",
	"internal/trace",
	"internal/table",
	"internal/session",
	"internal/telemetry",
	"internal/telemetry/span",
	"internal/sweep",
}

// isDeterministicPkg reports whether the import path names one of the
// packages under the determinism contract. Matching is by path suffix so
// test fixtures and forks of the module resolve identically.
func isDeterministicPkg(path string) bool {
	for _, p := range deterministicPkgs {
		if path == p || strings.HasSuffix(path, "/"+p) {
			return true
		}
	}
	return false
}

// funcObj resolves an identifier to the function it uses, or nil.
func funcObj(info *types.Info, id *ast.Ident) *types.Func {
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// pkgPathOf returns the import path of the package declaring fn, or "".
func pkgPathOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"ndnprivacy/internal/lint/cfg"
)

// viewFlow runs viewsafe's per-function taint analysis. Taint is a
// bitmask over taint sources: one bit per parameter slot (receiver
// first) plus viewLocalBit for views created inside the function by a
// //ndnlint:viewprop call. Values are traced flow-sensitively through
// the CFG's reaching definitions, so reassigning a variable to an
// owned value kills its taint on that path.
type viewFlow struct {
	vs       *viewSafe
	info     *types.Info
	scope    funcScope
	sum      *viewSummary
	graph    *cfg.Graph
	reach    *cfg.Reaching
	paramIdx map[*types.Var]int
	parents  map[ast.Node]ast.Node
	visiting map[*ast.Ident]bool
	isProp   bool
}

// analyzeScope builds the view summary for one function body.
// Functions marked //ndnlint:viewcopy are the trusted bridge from view
// to owned values and are exempt.
func (vs *viewSafe) analyzeScope(u *Unit, file *ast.File, scope funcScope) *viewSummary {
	var fn *types.Func
	var sig *types.Signature
	if scope.decl != nil {
		f, ok := u.Info.Defs[scope.decl.Name].(*types.Func)
		if !ok {
			return nil
		}
		fn = f
		sig, _ = fn.Type().(*types.Signature)
	} else {
		t := u.Info.TypeOf(scope.lit)
		if t != nil {
			sig, _ = t.(*types.Signature)
		}
	}
	if sig == nil {
		return nil
	}
	if fn != nil && vs.viewCopy[fn] {
		return nil
	}
	sum := &viewSummary{fn: fn, name: viewSummaryName(u, file, scope)}
	paramIdx := make(map[*types.Var]int)
	addParam := func(v *types.Var) {
		if v == nil {
			sum.params = append(sum.params, nil)
			return
		}
		paramIdx[v] = len(sum.params)
		if vs.containsView(v.Type()) {
			sum.viewParams |= viewParamBit(len(sum.params))
		}
		sum.params = append(sum.params, v)
	}
	if recv := sig.Recv(); recv != nil {
		addParam(recv)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		addParam(sig.Params().At(i))
	}

	f := &viewFlow{
		vs:       vs,
		info:     u.Info,
		scope:    scope,
		sum:      sum,
		graph:    scope.graph(),
		paramIdx: paramIdx,
		parents:  parentMap(scope.body),
		visiting: make(map[*ast.Ident]bool),
		isProp:   fn != nil && vs.viewProp[fn],
	}
	f.reach = cfg.NewReaching(f.graph, u.Info, cfg.ParamVars(u.Info, scope.recv, scope.ftype))
	for _, blk := range f.graph.Blocks {
		for _, n := range blk.Nodes {
			f.scanNode(n)
		}
	}
	return sum
}

// sink records a retention point; zero-taint stores are not sinks.
func (f *viewFlow) sink(pos token.Pos, msg string, mask uint64) {
	if mask == 0 {
		return
	}
	f.sum.sinks = append(f.sum.sinks, viewSink{pos: pos, msg: msg, mask: mask})
}

// --- node classification ------------------------------------------------

func (f *viewFlow) scanNode(n ast.Node) {
	switch s := n.(type) {
	case *ast.AssignStmt:
		f.scanAssign(s)
		f.scanExprs(s, s)
	case *ast.SendStmt:
		f.sink(s.Arrow, "view sent on a channel", f.taint(s.Value, s))
		f.scanExprs(s, s)
	case *ast.ReturnStmt:
		f.scanReturn(s)
		f.scanExprs(s, s)
	case *ast.GoStmt:
		f.scanGo(s)
		f.scanExprs(s, s)
	case *ast.RangeStmt:
		// The CFG adds the whole RangeStmt as the loop-head node but
		// lowers the body into its own blocks; scan only the header.
		f.scanExprs(s.X, s)
	case *ast.DeclStmt:
		f.scanDecl(s)
		f.scanExprs(s, s)
	default:
		f.scanExprs(n, n)
	}
}

// scanExprs walks a node's expression subtree, recording call edges,
// extern sinks, and escaping-closure captures. Function literal
// interiors belong to their own scopes and are skipped.
func (f *viewFlow) scanExprs(root ast.Node, at ast.Node) {
	if root == nil {
		return
	}
	ast.Inspect(root, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit:
			f.scanClosure(x, at)
			return false
		case *ast.CallExpr:
			f.scanCall(x, at)
		}
		return true
	})
}

// scanAssign checks every left-hand side a tainted value lands on.
func (f *viewFlow) scanAssign(s *ast.AssignStmt) {
	if len(s.Lhs) == len(s.Rhs) {
		for i, lhs := range s.Lhs {
			f.store(lhs, f.taint(s.Rhs[i], s), s)
		}
		return
	}
	if len(s.Rhs) != 1 {
		return
	}
	switch rhs := ast.Unparen(s.Rhs[0]).(type) {
	case *ast.CallExpr:
		for i, lhs := range s.Lhs {
			f.store(lhs, f.callResultTaint(rhs, i, s), s)
		}
	case *ast.TypeAssertExpr:
		if len(s.Lhs) > 0 {
			f.store(s.Lhs[0], f.taint(rhs.X, s), s)
		}
	case *ast.UnaryExpr: // v, ok := <-ch
		if rhs.Op == token.ARROW && len(s.Lhs) > 0 {
			f.store(s.Lhs[0], f.taint(rhs, s), s)
		}
	}
}

// scanDecl handles `var x = expr` statements.
func (f *viewFlow) scanDecl(s *ast.DeclStmt) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return
	}
	for _, spec := range gd.Specs {
		val, ok := spec.(*ast.ValueSpec)
		if !ok || len(val.Values) != len(val.Names) {
			continue
		}
		for i, name := range val.Names {
			f.store(name, f.taint(val.Values[i], s), s)
		}
	}
}

// store classifies the destination of a tainted value.
func (f *viewFlow) store(lhs ast.Expr, mask uint64, at ast.Node) {
	if mask == 0 {
		return
	}
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		v := f.varOf(l)
		if v != nil && pkgLevelVar(v) {
			f.sink(l.Pos(), fmt.Sprintf("view stored in package variable %s", l.Name), mask)
		}
		// Stores to locals are tracked by reaching definitions, not
		// flagged: retention only happens when the local escapes.
	case *ast.SelectorExpr:
		if sel := f.info.Selections[l]; sel != nil && sel.Kind() == types.FieldVal {
			// Building a view aggregate (v.wire = ... inside
			// ParseNameView) is fine: the aggregate is itself a view
			// and carries the taint onward.
			if f.vs.containsView(f.typeOf(l.X)) {
				return
			}
			f.sink(l.Sel.Pos(), fmt.Sprintf("view stored in struct field %s", l.Sel.Name), mask)
			return
		}
		if v, ok := f.info.Uses[l.Sel].(*types.Var); ok && pkgLevelVar(v) {
			f.sink(l.Sel.Pos(), fmt.Sprintf("view stored in package variable %s", l.Sel.Name), mask)
		}
	case *ast.IndexExpr:
		switch f.typeOf(l.X).Underlying().(type) {
		case *types.Map:
			f.sink(l.Pos(), "view stored in a map", mask)
		case *types.Slice:
			f.sink(l.Pos(), "view stored in a slice element", mask)
		}
		// Arrays have value semantics: a local array of views is only
		// a problem when the array itself escapes, which the array's
		// own taint covers.
	case *ast.StarExpr:
		f.sink(l.Pos(), "view stored through a pointer", mask)
	}
}

// scanReturn flags view results leaving a function that is not
// declared to propagate views.
func (f *viewFlow) scanReturn(s *ast.ReturnStmt) {
	if f.isProp {
		return
	}
	const msg = "view returned from a function not marked //ndnlint:viewprop"
	if len(s.Results) == 0 && f.scope.ftype != nil {
		for _, v := range cfg.ResultVars(f.info, f.scope.ftype) {
			f.sink(s.Pos(), msg, f.identTaint(v, s))
		}
		return
	}
	for _, res := range s.Results {
		f.sink(res.Pos(), msg, f.taint(res, s))
	}
}

// scanGo flags views crossing into a goroutine, whose lifetime is
// unbounded relative to the wire buffer.
func (f *viewFlow) scanGo(s *ast.GoStmt) {
	var mask uint64
	for _, a := range s.Call.Args {
		mask |= f.taint(a, s)
	}
	if _, isLit := ast.Unparen(s.Call.Fun).(*ast.FuncLit); !isLit {
		mask |= f.taint(s.Call.Fun, s)
	}
	f.sink(s.Pos(), "view passed to a goroutine", mask)
	// A `go func(){...}()` literal is handled by scanClosure, which
	// sees the GoStmt parent and flags tainted captures.
}

// scanClosure flags function literals that capture tainted variables
// and may run after the buffer dies: goroutine bodies and literals
// that escape (stored or passed rather than invoked in place).
func (f *viewFlow) scanClosure(lit *ast.FuncLit, at ast.Node) {
	mask, captured := f.closureCaptureMask(lit, at)
	if mask == 0 {
		return
	}
	parent := f.parents[lit]
	for {
		if _, ok := parent.(*ast.ParenExpr); !ok {
			break
		}
		parent = f.parents[parent]
	}
	if call, ok := parent.(*ast.CallExpr); ok && ast.Unparen(call.Fun) == lit {
		if _, isGo := f.parents[call].(*ast.GoStmt); isGo {
			f.sink(lit.Pos(), fmt.Sprintf("view %s captured by a goroutine closure", captured), mask)
		}
		// Invoked in place (incl. defer): runs while the buffer lives.
		return
	}
	f.sink(lit.Pos(), fmt.Sprintf("view %s captured by an escaping closure", captured), mask)
}

// closureCaptureMask unions the taint of every outer variable the
// literal captures, returning the first tainted name for the message.
func (f *viewFlow) closureCaptureMask(lit *ast.FuncLit, at ast.Node) (uint64, string) {
	var mask uint64
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := f.info.Uses[id].(*types.Var)
		if !ok || v.IsField() || pkgLevelVar(v) {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // the literal's own local or parameter
		}
		if m := f.identTaint(v, at); m != 0 {
			mask |= m
			if name == "" {
				name = id.Name
			}
		}
		return true
	})
	return mask, name
}

// --- calls --------------------------------------------------------------

// scanCall records summary edges for module calls and sinks for
// external, interface, and dynamic calls that receive tainted values.
func (f *viewFlow) scanCall(call *ast.CallExpr, at ast.Node) {
	if tv, ok := f.info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion: handled by taint propagation
	}
	callee, recvExpr, kind := f.resolveCall(call)
	switch kind {
	case viewCallBuiltin, viewCallInline:
		return
	case viewCallStatic:
		if f.vs.viewCopy[callee] {
			return // the trusted copy boundary: arguments are read, not kept
		}
		if !f.moduleFunc(callee) {
			f.externSink(call, callee, recvExpr, at)
			return
		}
		// Edges are resolved against summaries during the fixpoint,
		// so recording them before the callee is analyzed is fine.
		f.recordEdges(call, callee, recvExpr, at)
	case viewCallIface:
		mask := f.argTaint(call, nil, at)
		f.sink(call.Pos(), fmt.Sprintf("view passed through interface call %s (unverifiable retention)", callee.Name()), mask)
	case viewCallDynamic:
		mask := f.argTaint(call, nil, at)
		f.sink(call.Pos(), "view passed through a dynamic call (unverifiable retention)", mask)
	}
}

// moduleFunc reports whether fn belongs to one of the analyzed units.
func (f *viewFlow) moduleFunc(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	for _, u := range f.vs.pass.Units {
		if u.Pkg == pkg {
			return true
		}
	}
	return false
}

// externSink flags tainted arguments handed to functions outside the
// module, unless the function is on the vetted non-retaining list.
func (f *viewFlow) externSink(call *ast.CallExpr, callee *types.Func, recvExpr ast.Expr, at ast.Node) {
	if viewExternClean(callee) {
		return
	}
	mask := f.argTaint(call, recvExpr, at)
	f.sink(call.Pos(), fmt.Sprintf("view passed to %s, which may retain it", shortFuncName(callee)), mask)
}

// argTaint unions receiver and argument taint.
func (f *viewFlow) argTaint(call *ast.CallExpr, recvExpr ast.Expr, at ast.Node) uint64 {
	var mask uint64
	if recvExpr != nil {
		mask |= f.taint(recvExpr, at)
	}
	for _, a := range call.Args {
		mask |= f.taint(a, at)
	}
	return mask
}

// recordEdges maps tainted arguments onto the callee's parameter
// slots for summary composition.
func (f *viewFlow) recordEdges(call *ast.CallExpr, callee *types.Func, recvExpr ast.Expr, at ast.Node) {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	offset := 0
	if sig.Recv() != nil {
		offset = 1
		if recvExpr != nil {
			if m := f.taint(recvExpr, at); m != 0 {
				f.sum.edges = append(f.sum.edges, viewEdge{pos: call.Pos(), callee: callee, param: 0, mask: m})
			}
		}
	}
	nparams := sig.Params().Len()
	if nparams == 0 {
		return
	}
	for i, a := range call.Args {
		m := f.taint(a, at)
		if m == 0 {
			continue
		}
		slot := i
		if slot >= nparams {
			slot = nparams - 1 // variadic tail
		}
		f.sum.edges = append(f.sum.edges, viewEdge{pos: call.Pos(), callee: callee, param: slot + offset, mask: m})
	}
}

// call classification
const (
	viewCallStatic = iota
	viewCallIface
	viewCallBuiltin
	viewCallDynamic
	viewCallInline
)

// resolveCall identifies the call target, mirroring alloccheck's
// resolution: static functions, concrete and interface methods,
// builtins, and dynamic function values.
func (f *viewFlow) resolveCall(call *ast.CallExpr) (*types.Func, ast.Expr, int) {
	fun := ast.Unparen(call.Fun)
	if _, ok := fun.(*ast.FuncLit); ok {
		return nil, nil, viewCallInline
	}
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if s := f.info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
			fn, ok := s.Obj().(*types.Func)
			if !ok {
				return nil, nil, viewCallDynamic
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				if _, iface := sig.Recv().Type().Underlying().(*types.Interface); iface {
					return fn, sel.X, viewCallIface
				}
			}
			return fn.Origin(), sel.X, viewCallStatic
		}
	}
	id := calleeIdent(fun)
	if id == nil {
		return nil, nil, viewCallDynamic
	}
	switch obj := f.info.Uses[id].(type) {
	case *types.Func:
		return obj.Origin(), nil, viewCallStatic
	case *types.Builtin:
		return nil, nil, viewCallBuiltin
	case *types.Nil:
		return nil, nil, viewCallBuiltin
	default:
		return nil, nil, viewCallDynamic
	}
}

// --- taint evaluation ---------------------------------------------------

// typeOf is info.TypeOf with a nil guard.
func (f *viewFlow) typeOf(e ast.Expr) types.Type {
	if e == nil {
		return nil
	}
	return f.info.TypeOf(e)
}

// varOf resolves an identifier to its variable object.
func (f *viewFlow) varOf(id *ast.Ident) *types.Var {
	if v, ok := f.info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := f.info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

// taint computes the source mask an expression's value may carry at
// node `at`. Basic-typed values (hashes, lengths, strings) can never
// alias a view, which is what lets string conversions act as the copy
// boundary.
func (f *viewFlow) taint(e ast.Expr, at ast.Node) uint64 {
	if e == nil {
		return 0
	}
	if t := f.typeOf(e); t != nil && !canCarryView(t) {
		return 0
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v := f.varOf(x); v != nil {
			return f.identTaint(v, at)
		}
		return 0
	case *ast.SelectorExpr:
		if sel := f.info.Selections[x]; sel != nil {
			if sel.Kind() == types.FieldVal {
				return f.taint(x.X, at)
			}
			return 0 // method value
		}
		if v, ok := f.info.Uses[x.Sel].(*types.Var); ok {
			return f.identTaint(v, at)
		}
		return 0
	case *ast.IndexExpr:
		return f.taint(x.X, at)
	case *ast.IndexListExpr:
		return f.taint(x.X, at)
	case *ast.SliceExpr:
		return f.taint(x.X, at)
	case *ast.StarExpr:
		return f.taint(x.X, at)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return f.taint(x.X, at)
		}
		return 0
	case *ast.CompositeLit:
		var m uint64
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				m |= f.taint(kv.Value, at)
			} else {
				m |= f.taint(el, at)
			}
		}
		return m
	case *ast.TypeAssertExpr:
		return f.taint(x.X, at)
	case *ast.CallExpr:
		if tv, ok := f.info.Types[x.Fun]; ok && tv.IsType() {
			return f.conversionTaint(x, at)
		}
		return f.callResultTaint(x, 0, at)
	}
	return 0
}

// conversionTaint: conversions to basic types (string included) copy;
// conversions between reference shapes alias the same memory.
func (f *viewFlow) conversionTaint(conv *ast.CallExpr, at ast.Node) uint64 {
	if len(conv.Args) != 1 {
		return 0
	}
	op := conv.Args[0]
	if t := f.typeOf(op); t != nil {
		if _, basic := t.Underlying().(*types.Basic); basic {
			return 0 // []byte(string) and friends build fresh storage
		}
	}
	return f.taint(op, at)
}

// callResultTaint computes the mask of result `idx` of a call. Only
// //ndnlint:viewprop functions (and functions whose declared result is
// a view type) hand views back; their result carries the union of the
// argument taint, or viewLocalBit when the view is born here (derived
// from an owned buffer).
func (f *viewFlow) callResultTaint(call *ast.CallExpr, idx int, at ast.Node) uint64 {
	if tv, ok := f.info.Types[call.Fun]; ok && tv.IsType() {
		return f.conversionTaint(call, at)
	}
	callee, recvExpr, kind := f.resolveCall(call)
	if kind == viewCallBuiltin {
		return f.builtinTaint(call, at)
	}
	if callee == nil || kind == viewCallInline {
		return 0
	}
	if f.vs.viewCopy[callee] {
		return 0 // owned copy by contract
	}
	rt := f.resultType(call, idx)
	if rt == nil || !f.vs.resultCarriesView(rt) {
		return 0
	}
	if !f.vs.viewProp[callee] && !f.vs.containsView(rt) {
		return 0 // plain function returning plain bytes: assumed owned
	}
	// Only view-typed sources keep their provenance through a viewprop
	// call (v.Component(i) on a view parameter still points at that
	// parameter's buffer). Deriving a view from anything else — an
	// owned local, a plain []byte parameter — births a view right
	// here, which is what makes retaining it a definite violation in
	// this function rather than a conditional fact about callers.
	mask := f.argTaint(call, recvExpr, at) & (viewLocalBit | f.sum.viewParams)
	if mask == 0 {
		mask = viewLocalBit
	}
	return mask
}

// resultType extracts the type of result idx of call.
func (f *viewFlow) resultType(call *ast.CallExpr, idx int) types.Type {
	tv, ok := f.info.Types[call]
	if !ok || tv.Type == nil {
		return nil
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		if idx < tuple.Len() {
			return tuple.At(idx).Type()
		}
		return nil
	}
	if idx == 0 {
		return tv.Type
	}
	return nil
}

// builtinTaint models append and copy: appending byte elements copies
// them into dst's storage, appending view elements propagates them.
func (f *viewFlow) builtinTaint(call *ast.CallExpr, at ast.Node) uint64 {
	id := calleeIdent(ast.Unparen(call.Fun))
	if id == nil || id.Name != "append" || len(call.Args) == 0 {
		return 0
	}
	mask := f.taint(call.Args[0], at)
	elemBasic := false
	if s, ok := f.typeOf(call.Args[0]).Underlying().(*types.Slice); ok {
		_, elemBasic = s.Elem().Underlying().(*types.Basic)
	}
	for i, a := range call.Args[1:] {
		if call.Ellipsis.IsValid() && i == len(call.Args)-2 && elemBasic {
			continue // append(b, view...) copies the bytes out of the view
		}
		mask |= f.taint(a, at)
	}
	return mask
}

// identTaint unions the taint of every definition of v reaching `at`.
// The entry definition contributes the variable's parameter bit;
// captured and package-level variables of view-bearing types are
// treated as live views.
func (f *viewFlow) identTaint(v *types.Var, at ast.Node) uint64 {
	if v == nil || !canCarryView(v.Type()) {
		return 0
	}
	if pkgLevelVar(v) {
		if f.vs.containsView(v.Type()) {
			return viewLocalBit // already a structural violation; keep tracking it
		}
		return 0
	}
	defs := f.reach.DefsOf(v, at)
	if defs == nil {
		if i, ok := f.paramIdx[v]; ok {
			return viewParamBit(i)
		}
		if !f.scope.declaredIn(v) && f.vs.containsView(v.Type()) {
			return viewLocalBit // captured view from the enclosing scope
		}
		return 0
	}
	var mask uint64
	for _, d := range defs {
		if d.Ident == nil {
			if i, ok := f.paramIdx[v]; ok {
				mask |= viewParamBit(i)
			}
			continue
		}
		if f.visiting[d.Ident] {
			continue // x = x[1:] style cycles add nothing new
		}
		f.visiting[d.Ident] = true
		if d.Rhs != nil {
			mask |= f.taint(d.Rhs, d.Node)
		} else {
			mask |= f.defTaintNoRhs(d)
		}
		delete(f.visiting, d.Ident)
	}
	return mask
}

// defTaintNoRhs handles definitions the def/use extractor records
// without a right-hand side: range bindings and multi-value unpacking.
func (f *viewFlow) defTaintNoRhs(d cfg.Ref) uint64 {
	switch n := d.Node.(type) {
	case *ast.RangeStmt:
		return f.taint(n.X, d.Node)
	case *ast.AssignStmt:
		if len(n.Rhs) != 1 {
			return 0
		}
		switch rhs := ast.Unparen(n.Rhs[0]).(type) {
		case *ast.CallExpr:
			for i, lhs := range n.Lhs {
				if lid, ok := ast.Unparen(lhs).(*ast.Ident); ok && lid == d.Ident {
					return f.callResultTaint(rhs, i, d.Node)
				}
			}
		case *ast.TypeAssertExpr:
			if len(n.Lhs) > 0 {
				if lid, ok := ast.Unparen(n.Lhs[0]).(*ast.Ident); ok && lid == d.Ident {
					return f.taint(rhs.X, d.Node)
				}
			}
		}
	}
	return 0
}

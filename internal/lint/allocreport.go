package lint

import (
	"go/ast"
	"go/token"
)

// This file renders the allocation analysis as a machine-readable
// budget: per package, the //ndnlint:hotpath functions and whether
// their reachable call tree is clean, clean-only-under-waivers, or
// dirty. ALLOC_BUDGET.json at the repo root is the committed baseline;
// CI regenerates it and fails on drift, so a new allocation (or a new
// waiver) on an annotated path must be reviewed in the diff.
//
// Only hotpath data is recorded — non-annotated functions churn with
// every refactor and would make the baseline unreviewable.

// AllocBudget is the whole-module allocation budget.
type AllocBudget struct {
	// Packages maps import path → that package's hotpath statuses.
	// encoding/json sorts map keys, so the marshaled form is stable.
	Packages map[string]*PackageBudget `json:"packages"`
}

// PackageBudget is one package's slice of the allocation budget.
type PackageBudget struct {
	// Hotpaths maps a function rendered as Func or (recv).Method to its
	// propagated status.
	Hotpaths map[string]HotpathStatus `json:"hotpaths"`
}

// HotpathStatus summarizes one annotated function's reachable tree.
type HotpathStatus struct {
	// Status is "clean" (no allocation anywhere reachable), "waived"
	// (allocation-free only thanks to //ndnlint:allow alloccheck
	// directives), or "dirty" (unwaived allocations reachable).
	Status string `json:"status"`
	// WaivedSites and WaivedCalls count the directives the status
	// depends on, so new waivers show up as budget drift.
	WaivedSites int `json:"waived_sites,omitempty"`
	WaivedCalls int `json:"waived_calls,omitempty"`
}

// BuildAllocBudget runs the allocation analysis over the units and
// returns the hotpath budget (ndnlint -allocreport).
func BuildAllocBudget(fset *token.FileSet, units []*Unit) *AllocBudget {
	var files []*ast.File
	for _, u := range units {
		files = append(files, u.Files...)
	}
	g := buildAllocGraph(fset, units)
	g.markWaivers(collectAllows(fset, files))

	budget := &AllocBudget{Packages: make(map[string]*PackageBudget)}
	for _, root := range g.hotpathRoots() {
		status := g.hotpathStatus(root)
		path := root.fn.Pkg().Path()
		pkg := budget.Packages[path]
		if pkg == nil {
			pkg = &PackageBudget{Hotpaths: make(map[string]HotpathStatus)}
			budget.Packages[path] = pkg
		}
		pkg.Hotpaths[shortFuncName(root.fn)] = status
	}
	return budget
}

// hotpathStatus walks root's reachable tree over unwaived edges and
// aggregates: any unwaived site → dirty; otherwise any waiver
// encountered → waived; otherwise clean.
func (g *allocGraph) hotpathStatus(root *funcNode) HotpathStatus {
	status := HotpathStatus{Status: "clean"}
	dirty := false
	seen := map[*funcNode]bool{root: true}
	queue := []*funcNode{root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, site := range n.sites {
			if site.waived {
				status.WaivedSites++
			} else {
				dirty = true
			}
		}
		for i := range n.calls {
			call := &n.calls[i]
			if call.waived {
				status.WaivedCalls++
				continue
			}
			for _, callee := range call.callees {
				next := g.nodes[callee]
				if next == nil || seen[next] {
					continue
				}
				seen[next] = true
				queue = append(queue, next)
			}
		}
	}
	switch {
	case dirty:
		status.Status = "dirty"
	case status.WaivedSites+status.WaivedCalls > 0:
		status.Status = "waived"
	}
	return status
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// WireErr flags statements that call an internal/ndn function or method
// returning an error and drop every result: `ndn.EncodePacket(p)` as a
// bare statement, or behind go/defer. A swallowed encode/decode/parse
// error fabricates malformed packets mid-experiment and corrupts the
// measured distributions without failing anything. Explicitly assigning
// the error to _ is treated as a deliberate, reviewable decision and is
// not flagged.
var WireErr = &Analyzer{
	Name: "wireerr",
	Doc:  "flag discarded error returns from internal/ndn encode/decode/parse functions",
	Hint: "handle or propagate the error; write `_ = ...` (or //ndnlint:allow wireerr) only when discarding is provably safe",
	Run:  runWireErr,
}

func runWireErr(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, _ = stmt.X.(*ast.CallExpr)
			case *ast.GoStmt:
				call = stmt.Call
			case *ast.DeferStmt:
				call = stmt.Call
			}
			if call == nil {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || !isNDNWirePkg(pkgPathOf(fn)) || !lastResultIsError(fn) {
				return true
			}
			pass.Reportf(call.Pos(), "error returned by %s.%s is silently discarded", fn.Pkg().Name(), fn.Name())
			return true
		})
	}
}

// calleeFunc resolves the function a call statically invokes, through
// either a selector (pkg.F, recv.M) or a plain identifier.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return funcObj(info, fun.Sel)
	case *ast.Ident:
		return funcObj(info, fun)
	}
	return nil
}

// isNDNWirePkg reports whether path names the NDN wire-format package.
func isNDNWirePkg(path string) bool {
	return path == "internal/ndn" || strings.HasSuffix(path, "/internal/ndn")
}

// lastResultIsError reports whether fn's final result is the builtin
// error type.
func lastResultIsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

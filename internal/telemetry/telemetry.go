// Package telemetry is the stack's observability layer: a per-simulator
// metrics registry (counters, gauges, fixed-bucket exponential
// histograms) and a structured event trace, both deterministic by
// construction. Nothing here reads the wall clock or global randomness —
// every event is stamped with the virtual time its caller supplies, and
// every exporter emits metrics in stable sorted order, so two runs with
// the same seed produce byte-identical output. The package depends only
// on the standard library; the rest of the stack hangs instrumentation
// off it behind nil checks, keeping the uninstrumented hot path at one
// predictable branch and zero allocations.
//
// There are deliberately no package-level registries: a Registry belongs
// to one run (typically one netsim.Simulator), which is what keeps
// ndnlint's determinism contract intact and lets tests run in parallel
// without shared state.
package telemetry

import (
	"strings"

	"ndnprivacy/internal/telemetry/span"
)

// Provider is implemented by executors that carry telemetry for the
// nodes running on them. netsim.Simulator implements it; forwarders and
// endpoints inherit their registry and trace sink from their executor
// unless explicitly configured.
type Provider interface {
	// Metrics returns the run's registry, or nil when disabled.
	Metrics() *Registry
	// TraceSink returns the run's event sink, or nil when disabled.
	TraceSink() Sink
	// Spans returns the run's span tracer, or nil when disabled.
	Spans() *span.Tracer
}

// ID renders a metric identifier from a family name and label key/value
// pairs, in Prometheus sample syntax: ID("fwd_cs_hits_total", "node",
// "R") is `fwd_cs_hits_total{node="R"}`. Labels render in argument
// order; call sites must use a fixed order so identical metrics map to
// identical identifiers. An odd trailing key is ignored.
func ID(name string, labels ...string) string {
	if len(labels) < 2 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies Prometheus label-value escaping.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// splitID separates a rendered identifier into its family name and the
// label body (the text inside the braces, empty when unlabeled).
func splitID(id string) (family, labels string) {
	open := strings.IndexByte(id, '{')
	if open < 0 || !strings.HasSuffix(id, "}") {
		return id, ""
	}
	return id[:open], id[open+1 : len(id)-1]
}

package telemetry

import (
	"math"
	"testing"
)

func TestCounterNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if got := c.Value(); got != 0 {
		t.Fatalf("nil counter Value = %d, want 0", got)
	}
	c = NewCounter()
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter Value = %d, want 42", got)
	}
}

func TestGaugeNilSafety(t *testing.T) {
	var g *Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 0 {
		t.Fatalf("nil gauge Value = %d, want 0", got)
	}
	g = NewGauge()
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge Value = %d, want 4", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	want := []uint64{2, 1, 1, 1} // (≤1)×2, (≤10), (≤100), overflow
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket[%d] = %d, want %d (%v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if sum := h.Sum(); math.Abs(sum-556.5) > 1e-9 {
		t.Fatalf("Sum = %g, want 556.5", sum)
	}
	var nilH *Histogram
	nilH.Observe(1)
	if nilH.Count() != 0 || nilH.Sum() != 0 || nilH.Bounds() != nil || nilH.BucketCounts() != nil {
		t.Fatal("nil histogram must read as empty")
	}
}

func TestExponentialBounds(t *testing.T) {
	bounds := ExponentialBounds(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	if len(bounds) != len(want) {
		t.Fatalf("len = %d, want %d", len(bounds), len(want))
	}
	for i := range want {
		if bounds[i] != want[i] {
			t.Fatalf("bounds[%d] = %g, want %g", i, bounds[i], want[i])
		}
	}
	if degenerate := ExponentialBounds(0, 0.5, -1); len(degenerate) != 1 {
		t.Fatalf("degenerate layout = %v, want single bucket", degenerate)
	}
}

func TestID(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{ID("m_total"), "m_total"},
		{ID("m_total", "node", "R"), `m_total{node="R"}`},
		{ID("m_total", "node", "R", "face", "3"), `m_total{node="R",face="3"}`},
		{ID("m_total", "node", `q"\`+"\n"), `m_total{node="q\"\\\n"}`},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Fatalf("ID = %q, want %q", c.got, c.want)
		}
	}
}

// TestDisabledPathAllocs pins the cost of telemetry when it is off: the
// nil-safe method set and the Emit helper must not allocate, so
// instrumented hot paths add one predictable branch and nothing else.
func TestDisabledPathAllocs(t *testing.T) {
	var c *Counter
	var h *Histogram
	ev := Event{At: 1, Type: EvCSHit, Node: "R"}
	if allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(1)
		Emit(nil, ev)
	}); allocs != 0 {
		t.Fatalf("disabled path allocates %.1f allocs/op, want 0", allocs)
	}
	live := NewCounter()
	liveH := NewHistogram([]float64{1, 2, 4})
	if allocs := testing.AllocsPerRun(1000, func() {
		live.Inc()
		liveH.Observe(3)
	}); allocs != 0 {
		t.Fatalf("enabled counter/histogram path allocates %.1f allocs/op, want 0", allocs)
	}
}

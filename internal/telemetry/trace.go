package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Event trace record types. One flat schema covers the whole stack so a
// trace file is a single NDJSON stream an analysis script can filter by
// type.
const (
	// EvRunStart marks the boundary between repetitions of a multi-run
	// experiment (Run carries the repetition index).
	EvRunStart = "run_start"
	// EvInterestForward: an interest left a node upstream (Face is the
	// outgoing face).
	EvInterestForward = "interest_forward"
	// EvInterestAggregate: an interest collapsed into an existing PIT
	// entry.
	EvInterestAggregate = "interest_aggregate"
	// EvInterestDrop: an interest died at a node; Action is the reason
	// (scope, no_route, pit_full, dup_nonce).
	EvInterestDrop = "interest_drop"
	// EvCSHit: a fresh cached entry matched an interest (before the
	// cache manager's decision; see EvCMDecision for the outcome).
	EvCSHit = "cs_hit"
	// EvCSMiss: no fresh cached entry matched.
	EvCSMiss = "cs_miss"
	// EvCSInsert: content entered a Content Store.
	EvCSInsert = "cs_insert"
	// EvCSEvict: an entry left a Content Store; Action is the reason
	// (capacity, stale, remove, clear).
	EvCSEvict = "cs_evict"
	// EvCSPromote: a tiered store moved an entry from the second (disk)
	// tier into the RAM front on a disk hit; DelayNS is the read cost.
	EvCSPromote = "cs_promote"
	// EvCSDemote: a tiered store moved a RAM-front eviction victim down
	// to the second tier instead of discarding it.
	EvCSDemote = "cs_demote"
	// EvCSDiskRead: a forwarder served a hit from the second tier;
	// DelayNS is the modeled disk service cost added to the response.
	EvCSDiskRead = "cs_disk_read"
	// EvPITExpire: a pending-interest entry lapsed unanswered.
	EvPITExpire = "pit_expire"
	// EvDataUnsolicited: data arrived with no matching PIT entry.
	EvDataUnsolicited = "data_unsolicited"
	// EvLinkTx: a packet was accepted for transmission; DelayNS is the
	// propagation+serialization delay it will incur, Size its wire size.
	EvLinkTx = "link_tx"
	// EvLinkDrop: a packet was lost on a link (Action: loss, fault).
	EvLinkDrop = "link_drop"
	// EvCMDecision: a cache manager ruled on a cache hit; Action is the
	// core.Action string (serve, delayed-serve, miss) and DelayNS the
	// artificial delay for delayed serves.
	EvCMDecision = "cm_decision"
	// EvCMCoin: Random-Cache drew a fresh threshold k_C; Value carries
	// the draw.
	EvCMCoin = "cm_coin"
	// EvProbe: an attack probe resolved; DelayNS is the observed RTT and
	// Action the outcome (ok, timeout).
	EvProbe = "probe"
)

// Event is one trace record. At is always virtual time (nanoseconds
// since the simulator epoch) — never wall-clock — so traces are
// byte-stable for a fixed seed. Unused fields stay zero and are omitted
// from the NDJSON encoding.
type Event struct {
	At      int64  `json:"at"`
	Type    string `json:"type"`
	Node    string `json:"node,omitempty"`
	Name    string `json:"name,omitempty"`
	Face    uint64 `json:"face,omitempty"`
	Action  string `json:"action,omitempty"`
	DelayNS int64  `json:"delay_ns,omitempty"`
	Size    int    `json:"size,omitempty"`
	Value   uint64 `json:"value,omitempty"`
	Run     int    `json:"run,omitempty"`
}

// Sink consumes trace events. Implementations must tolerate events from
// any goroutine; in simulator runs all events arrive from the single
// event-loop goroutine.
type Sink interface {
	Emit(ev Event)
}

// Emit forwards ev to s when s is non-nil — the one-branch helper
// instrumented code calls so a disabled trace costs exactly that branch.
func Emit(s Sink, ev Event) {
	if s != nil {
		s.Emit(ev)
	}
}

// TraceWriter is a Sink encoding events as NDJSON: one JSON object per
// line, fields in fixed schema order, so a trace is byte-stable for a
// deterministic event stream. It buffers internally; call Flush before
// reading the underlying writer. Safe for concurrent use.
type TraceWriter struct {
	mu  sync.Mutex
	w   *bufio.Writer
	err error
}

var _ Sink = (*TraceWriter)(nil)

// NewTraceWriter wraps w in a buffered NDJSON encoder.
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{w: bufio.NewWriter(w)}
}

// Emit implements Sink. The first encode or write error is latched and
// reported by Flush; later events are dropped.
func (t *TraceWriter) Emit(ev Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	line, err := json.Marshal(ev)
	if err != nil {
		t.err = err
		return
	}
	if _, err := t.w.Write(line); err != nil {
		t.err = err
		return
	}
	t.err = t.w.WriteByte('\n')
}

// Flush drains the buffer and returns the first error encountered by any
// prior Emit or the flush itself.
func (t *TraceWriter) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// DecodeTrace parses an NDJSON trace stream back into events, skipping
// blank lines. It is the inverse of TraceWriter for valid traces.
func DecodeTrace(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var events []Event
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("telemetry: trace line %d: %w", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: reading trace: %w", err)
	}
	return events, nil
}

// Recorder is a Sink that retains every event in memory, for tests and
// in-process analysis. Safe for concurrent use.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

var _ Sink = (*Recorder)(nil)

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Emit implements Sink.
func (r *Recorder) Emit(ev Event) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// Events returns a copy of the recorded events in emission order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

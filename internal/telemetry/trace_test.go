package telemetry

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func sampleEvents() []Event {
	return []Event{
		{At: 0, Type: EvRunStart, Run: 3},
		{At: 1500, Type: EvInterestForward, Node: "R", Name: "/p/obj/1", Face: 2},
		{At: 2000, Type: EvCSEvict, Node: "R", Name: "/p/obj/0", Action: "capacity"},
		{At: 2500, Type: EvCMDecision, Node: "R", Name: "/p/obj/1", Action: "delayed-serve", DelayNS: 12_000_000},
		{At: 3000, Type: EvLinkTx, Node: "U-R", DelayNS: 100_000, Size: 64},
		{At: 3500, Type: EvCMCoin, Node: "R", Name: "/p/obj/2", Value: 7},
	}
}

func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewTraceWriter(&buf)
	events := sampleEvents()
	for _, ev := range events {
		w.Emit(ev)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, decoded) {
		t.Fatalf("round trip mismatch:\n in: %#v\nout: %#v", events, decoded)
	}
}

func TestTraceWriterByteStable(t *testing.T) {
	render := func() []byte {
		var buf bytes.Buffer
		w := NewTraceWriter(&buf)
		for _, ev := range sampleEvents() {
			w.Emit(ev)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first := render()
	for i := 0; i < 5; i++ {
		if !bytes.Equal(first, render()) {
			t.Fatal("identical event streams must encode to identical bytes")
		}
	}
}

func TestTraceWriterLatchesError(t *testing.T) {
	w := NewTraceWriter(failWriter{})
	for i := 0; i < 600; i++ { // enough to overflow the bufio buffer
		w.Emit(Event{At: int64(i), Type: EvCSHit, Name: strings.Repeat("x", 64)})
	}
	if err := w.Flush(); err == nil {
		t.Fatal("Flush must report the underlying write error")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestDecodeTraceRejectsGarbage(t *testing.T) {
	_, err := DecodeTrace(strings.NewReader("{\"at\":1}\nnot json\n"))
	if err == nil {
		t.Fatal("DecodeTrace must fail on malformed lines")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error should name the offending line, got: %v", err)
	}
}

func TestDecodeTraceSkipsBlankLines(t *testing.T) {
	events, err := DecodeTrace(strings.NewReader("\n{\"at\":1,\"type\":\"cs_hit\"}\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Type != EvCSHit {
		t.Fatalf("decoded %#v, want the one cs_hit event", events)
	}
}

func TestRecorder(t *testing.T) {
	rec := NewRecorder()
	Emit(rec, Event{At: 1, Type: EvCSHit})
	Emit(nil, Event{At: 2, Type: EvCSMiss}) // must be a no-op, not a panic
	if rec.Len() != 1 {
		t.Fatalf("recorder holds %d events, want 1", rec.Len())
	}
	got := rec.Events()
	got[0].At = 99 // returned slice must be a copy
	if rec.Events()[0].At != 1 {
		t.Fatal("Events must return a copy, not the backing slice")
	}
}

// FuzzTraceRoundTrip throws arbitrary field values at the encoder and
// demands a lossless decode. Strings are sanitized to valid UTF-8 first:
// encoding/json replaces invalid bytes with U+FFFD by design, which is a
// representation concern, not a round-trip defect.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add(int64(0), EvCSHit, "R", "/p/obj/1", uint64(2), "capacity", int64(5), 64, uint64(7), 1)
	f.Add(int64(-1), "", "", "", uint64(0), "", int64(0), 0, uint64(0), 0)
	f.Add(int64(1<<62), EvProbe, "node\nwith\tweird", `/p/"quoted"`, ^uint64(0), "ok", int64(-9), -3, uint64(1)<<63, -2)
	f.Fuzz(func(t *testing.T, at int64, typ, node, name string, face uint64, action string, delay int64, size int, value uint64, run int) {
		in := Event{
			At:      at,
			Type:    strings.ToValidUTF8(typ, "�"),
			Node:    strings.ToValidUTF8(node, "�"),
			Name:    strings.ToValidUTF8(name, "�"),
			Face:    face,
			Action:  strings.ToValidUTF8(action, "�"),
			DelayNS: delay,
			Size:    size,
			Value:   value,
			Run:     run,
		}
		var buf bytes.Buffer
		w := NewTraceWriter(&buf)
		w.Emit(in)
		if err := w.Flush(); err != nil {
			t.Fatalf("encode: %v", err)
		}
		out, err := DecodeTrace(&buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(out) != 1 || out[0] != in {
			t.Fatalf("round trip mismatch:\n in: %#v\nout: %#v", in, out)
		}
	})
}

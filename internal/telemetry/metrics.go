package telemetry

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing counter, safe for concurrent
// use. All methods are nil-safe so instrumented code can hold a nil
// *Counter when telemetry is disabled and still call Inc unconditionally.
type Counter struct {
	v atomic.Uint64
}

// NewCounter returns a standalone counter, not attached to any registry.
// Components that must count unconditionally (cache.Store's eviction
// counter) start with one and swap in a registered counter when
// instrumented.
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
//
//ndnlint:hotpath — incremented on every forwarded Interest/Data
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
//
//ndnlint:hotpath
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count; 0 on a nil counter.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable signed value, safe for concurrent use and
// nil-safe like Counter.
type Gauge struct {
	v atomic.Int64
}

// NewGauge returns a standalone gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v.
//
//ndnlint:hotpath
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta (may be negative).
//
//ndnlint:hotpath
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value; 0 on a nil gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram with caller-supplied ascending
// upper bounds plus an implicit overflow bucket. Observation is a
// bounded linear scan and two atomic adds — no allocation, no locks.
type Histogram struct {
	bounds []float64 // ascending upper bounds; len(counts) = len(bounds)+1
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, updated by CAS
}

// NewHistogram builds a histogram over the given ascending upper
// bounds. Bounds are copied; out-of-order input is handled by insertion
// into the first bucket whose bound is >= the observation, so callers
// should pass sorted bounds (ExponentialBounds does).
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// ExponentialBounds returns n ascending upper bounds start, start*growth,
// start*growth², … — the fixed-bucket exponential layout the stack uses
// for latency distributions. growth must be > 1 and n > 0; violations
// yield a single-bucket layout rather than a panic, since bucket layout
// is a display concern, never a correctness one.
func ExponentialBounds(start, growth float64, n int) []float64 {
	if n <= 0 || start <= 0 || growth <= 1 {
		return []float64{math.Max(start, 1)}
	}
	bounds := make([]float64, n)
	b := start
	for i := range bounds {
		bounds[i] = b
		b *= growth
	}
	return bounds
}

// Observe records one sample. Nil-safe.
//
//ndnlint:hotpath — latency observation must not perturb the latency
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	idx := len(h.bounds) // overflow bucket
	for i, bound := range h.bounds {
		if v <= bound {
			idx = i
			break
		}
	}
	h.counts[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// mergeValue folds a snapshotted histogram into this one. When the
// bucket layouts match (the invariant for same-named histograms emitted
// by identical instrumentation), counts add bucket-by-bucket; a
// mismatched layout degrades gracefully by re-binning each source
// bucket at its upper bound, preserving Count and Sum exactly and
// bucket placement approximately. Nil-safe.
func (h *Histogram) mergeValue(hv HistogramValue) {
	if h == nil {
		return
	}
	if len(hv.Buckets) == len(h.counts) && boundsEqual(h.bounds, hv.Bounds) {
		for i, c := range hv.Buckets {
			h.counts[i].Add(c)
		}
	} else {
		for i, c := range hv.Buckets {
			if c == 0 {
				continue
			}
			idx := len(h.bounds) // overflow unless a bound fits
			if i < len(hv.Bounds) {
				for j, bound := range h.bounds {
					if hv.Bounds[i] <= bound {
						idx = j
						break
					}
				}
			}
			h.counts[idx].Add(c)
		}
	}
	h.count.Add(hv.Count)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + hv.Sum)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
}

func boundsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Count returns the number of observations; 0 on nil.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations; 0 on nil.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Bounds returns a copy of the bucket upper bounds.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	out := make([]float64, len(h.bounds))
	copy(out, h.bounds)
	return out
}

// BucketCounts returns per-bucket counts; the final element is the
// overflow bucket.
func (h *Histogram) BucketCounts() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

package telemetry

import (
	"bytes"
	"testing"
)

func TestRegistryMergeAddsValues(t *testing.T) {
	dst := NewRegistry()
	dst.Counter("c").Add(5)
	dst.Gauge("g").Set(-2)
	dst.Histogram("h", []float64{1, 10}).Observe(0.5)

	src := NewRegistry()
	src.Counter("c").Add(7)
	src.Counter("only_src").Add(1)
	src.Gauge("g").Add(3)
	src.Histogram("h", []float64{1, 10}).Observe(5)
	src.Histogram("h", []float64{1, 10}).Observe(100)

	dst.Merge(src.Snapshot())

	if got := dst.Counter("c").Value(); got != 12 {
		t.Fatalf("counter c = %d, want 12", got)
	}
	if got := dst.Counter("only_src").Value(); got != 1 {
		t.Fatalf("counter only_src = %d, want 1 (merge must create absent metrics)", got)
	}
	if got := dst.Gauge("g").Value(); got != 1 {
		t.Fatalf("gauge g = %d, want 1", got)
	}
	h := dst.Histogram("h", []float64{1, 10})
	if got := h.Count(); got != 3 {
		t.Fatalf("histogram count = %d, want 3", got)
	}
	if got := h.Sum(); got != 105.5 {
		t.Fatalf("histogram sum = %g, want 105.5", got)
	}
	if buckets := h.BucketCounts(); buckets[0] != 1 || buckets[1] != 1 || buckets[2] != 1 {
		t.Fatalf("bucket counts = %v, want [1 1 1]", buckets)
	}
}

func TestRegistryMergeMismatchedHistogramBounds(t *testing.T) {
	dst := NewRegistry()
	dst.Histogram("h", []float64{1, 10}).Observe(0.5)

	// A source snapshot with a different layout: counts re-bin at each
	// source bucket's upper bound, Count and Sum survive exactly.
	src := NewRegistry()
	sh := src.Histogram("h", []float64{2, 5, 50})
	sh.Observe(1.5) // ≤2 → re-bins at bound 2 → dst bucket ≤10
	sh.Observe(30)  // ≤50 → re-bins at bound 50 → dst overflow
	sh.Observe(999) // overflow → dst overflow

	dst.Merge(src.Snapshot())
	h := dst.Histogram("h", []float64{1, 10})
	if got := h.Count(); got != 4 {
		t.Fatalf("count = %d, want 4", got)
	}
	if got := h.Sum(); got != 1031 {
		t.Fatalf("sum = %g, want 1031", got)
	}
	if buckets := h.BucketCounts(); buckets[0] != 1 || buckets[1] != 1 || buckets[2] != 2 {
		t.Fatalf("bucket counts = %v, want [1 1 2]", buckets)
	}
}

func TestRegistryMergeCommutes(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("c").Add(3)
		r.Histogram("h", []float64{1}).Observe(2)
		return r
	}
	a, b := build(), build()
	b.Counter("c").Add(4)

	ab := NewRegistry()
	ab.Merge(a.Snapshot())
	ab.Merge(b.Snapshot())
	ba := NewRegistry()
	ba.Merge(b.Snapshot())
	ba.Merge(a.Snapshot())

	var bufAB, bufBA bytes.Buffer
	if err := ab.Snapshot().WritePrometheus(&bufAB); err != nil {
		t.Fatal(err)
	}
	if err := ba.Snapshot().WritePrometheus(&bufBA); err != nil {
		t.Fatal(err)
	}
	if bufAB.String() != bufBA.String() {
		t.Fatalf("merge is not commutative:\n%s\nvs\n%s", bufAB.String(), bufBA.String())
	}
}

func TestRegistryMergeNilSafe(t *testing.T) {
	var r *Registry
	r.Merge(Snapshot{Counters: []CounterValue{{Name: "c", Value: 1}}}) // must not panic
}

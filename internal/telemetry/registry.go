package telemetry

import (
	"sort"
	"sync"
)

// Registry owns one run's metrics. Metric instances are get-or-create by
// rendered identifier (see ID), so independent components naming the
// same metric share one instance. Registration takes a mutex; the
// returned Counter/Gauge/Histogram pointers are then incremented
// lock-free, which is why instrumented components resolve their metrics
// once at construction instead of per event.
//
// All methods are safe for concurrent use and nil-safe: calling
// Counter/Gauge/Histogram on a nil *Registry returns a standalone,
// unexported metric, so callers can instrument unconditionally.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under id, creating it if
// needed. On a nil registry it returns a standalone counter.
func (r *Registry) Counter(id string) *Counter {
	if r == nil {
		return NewCounter()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, found := r.counters[id]
	if !found {
		c = NewCounter()
		r.counters[id] = c
	}
	return c
}

// Gauge returns the gauge registered under id, creating it if needed.
func (r *Registry) Gauge(id string) *Gauge {
	if r == nil {
		return NewGauge()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, found := r.gauges[id]
	if !found {
		g = NewGauge()
		r.gauges[id] = g
	}
	return g
}

// Histogram returns the histogram registered under id, creating it with
// the given bucket bounds if needed. The bounds of an already-registered
// histogram win; callers sharing an id must agree on layout.
func (r *Registry) Histogram(id string, bounds []float64) *Histogram {
	if r == nil {
		return NewHistogram(bounds)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, found := r.histograms[id]
	if !found {
		h = NewHistogram(bounds)
		r.histograms[id] = h
	}
	return h
}

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeValue is one gauge in a snapshot.
type GaugeValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramValue is one histogram in a snapshot. Buckets holds raw
// (non-cumulative) per-bucket counts; its final element is the overflow
// bucket beyond the last bound.
type HistogramValue struct {
	Name    string    `json:"name"`
	Count   uint64    `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds"`
	Buckets []uint64  `json:"buckets"`
}

// Snapshot is a point-in-time copy of a registry, each section sorted by
// metric name so rendering it is deterministic. Individual metric reads
// are atomic; the snapshot as a whole is not (concurrent increments may
// land between reads), which is fine for both use cases: end-of-run
// export (nothing is running) and live inspection (approximate by
// nature).
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
}

// Merge folds a snapshot into the registry: counter and gauge values
// add onto same-named metrics (creating them if absent), histogram
// bucket counts, sums and totals likewise. Because addition commutes,
// merging per-run snapshots in any order yields the same totals; the
// sweep engine still merges in cell order so histogram bucket layouts
// are adopted deterministically from the first cell that defines them.
// A nil registry ignores the merge.
func (r *Registry) Merge(s Snapshot) {
	if r == nil {
		return
	}
	for _, c := range s.Counters {
		r.Counter(c.Name).Add(c.Value)
	}
	for _, g := range s.Gauges {
		r.Gauge(g.Name).Add(g.Value)
	}
	for _, h := range s.Histograms {
		r.Histogram(h.Name, h.Bounds).mergeValue(h)
	}
}

// Snapshot captures the registry's current values. On a nil registry it
// returns an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	snap.Counters = make([]CounterValue, 0, len(r.counters))
	for id, c := range r.counters {
		snap.Counters = append(snap.Counters, CounterValue{Name: id, Value: c.Value()})
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	snap.Gauges = make([]GaugeValue, 0, len(r.gauges))
	for id, g := range r.gauges {
		snap.Gauges = append(snap.Gauges, GaugeValue{Name: id, Value: g.Value()})
	}
	sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })
	snap.Histograms = make([]HistogramValue, 0, len(r.histograms))
	for id, h := range r.histograms {
		snap.Histograms = append(snap.Histograms, HistogramValue{
			Name:    id,
			Count:   h.Count(),
			Sum:     h.Sum(),
			Bounds:  h.Bounds(),
			Buckets: h.BucketCounts(),
		})
	}
	sort.Slice(snap.Histograms, func(i, j int) bool { return snap.Histograms[i].Name < snap.Histograms[j].Name })
	return snap
}

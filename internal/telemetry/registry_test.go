package telemetry

import (
	"io"
	"sync"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total")
	b := r.Counter("x_total")
	if a != b {
		t.Fatal("same id must return the same counter instance")
	}
	if r.Counter(`x_total{node="R"}`) == a {
		t.Fatal("distinct ids must return distinct counters")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("same id must return the same gauge instance")
	}
	h := r.Histogram("h", []float64{1, 2})
	if r.Histogram("h", []float64{9}) != h {
		t.Fatal("same id must return the first-registered histogram")
	}
	if got := len(h.Bounds()); got != 2 {
		t.Fatalf("bounds of first registration must win, got %d bounds", got)
	}
}

func TestNilRegistryReturnsStandaloneMetrics(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total")
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("standalone counter from nil registry must work")
	}
	r.Gauge("g").Set(3)
	r.Histogram("h", []float64{1}).Observe(2)
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestSnapshotSorted(t *testing.T) {
	r := NewRegistry()
	for _, id := range []string{"z_total", "a_total", "m_total"} {
		r.Counter(id).Inc()
	}
	snap := r.Snapshot()
	want := []string{"a_total", "m_total", "z_total"}
	for i, c := range snap.Counters {
		if c.Name != want[i] {
			t.Fatalf("snapshot order %d = %q, want %q", i, c.Name, want[i])
		}
	}
}

// TestRegistryConcurrentAccess exercises registration, increments, and
// snapshot/export concurrently; run under -race (scripts/check.sh does)
// it proves the lock-free increment path and the locked snapshot path
// are safe together.
func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const iters = 2000
	ids := []string{"a_total", `b_total{node="R"}`, "c_total"}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter(ids[w%len(ids)])
			h := r.Histogram("lat", []float64{1, 10, 100})
			g := r.Gauge("depth")
			for i := 0; i < iters; i++ {
				c.Inc()
				h.Observe(float64(i % 200))
				g.Add(1)
				if i%256 == 0 {
					snap := r.Snapshot()
					if err := snap.WritePrometheus(io.Discard); err != nil {
						t.Errorf("WritePrometheus: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	snap := r.Snapshot()
	var total uint64
	for _, c := range snap.Counters {
		total += c.Value
	}
	if total != workers*iters {
		t.Fatalf("counter total = %d, want %d", total, workers*iters)
	}
	for _, h := range snap.Histograms {
		if h.Count != workers*iters {
			t.Fatalf("histogram count = %d, want %d", h.Count, workers*iters)
		}
	}
}

package telemetry

import "testing"

// These tests pin the zero-allocation contract that the //ndnlint:hotpath
// annotations in metrics.go declare and alloccheck enforces statically:
// counter increments and histogram observations sit inside the latency
// the paper's adversary measures, so a regression here is experimental
// noise, not just a slowdown.

func TestCounterZeroAlloc(t *testing.T) {
	c := NewCounter()
	if n := testing.AllocsPerRun(200, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc: %.0f allocs/run, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { c.Add(3) }); n != 0 {
		t.Errorf("Counter.Add: %.0f allocs/run, want 0", n)
	}
	var nilCounter *Counter
	if n := testing.AllocsPerRun(200, func() { nilCounter.Inc() }); n != 0 {
		t.Errorf("nil Counter.Inc: %.0f allocs/run, want 0", n)
	}
}

func TestGaugeZeroAlloc(t *testing.T) {
	g := NewGauge()
	if n := testing.AllocsPerRun(200, func() { g.Set(42) }); n != 0 {
		t.Errorf("Gauge.Set: %.0f allocs/run, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { g.Add(-1) }); n != 0 {
		t.Errorf("Gauge.Add: %.0f allocs/run, want 0", n)
	}
}

func TestHistogramObserveZeroAlloc(t *testing.T) {
	h := NewHistogram(ExponentialBounds(1, 2, 10))
	v := 0.5
	if n := testing.AllocsPerRun(200, func() {
		h.Observe(v)
		v *= 1.5
		if v > 2000 {
			v = 0.5
		}
	}); n != 0 {
		t.Errorf("Histogram.Observe: %.0f allocs/run, want 0", n)
	}
}

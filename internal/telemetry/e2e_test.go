// End-to-end tests live in an external test package: they drive the
// attack scenarios (which import fwd, which imports telemetry) and would
// otherwise create an import cycle.
package telemetry_test

import (
	"bytes"
	"reflect"
	"testing"

	"ndnprivacy/internal/attack"
	"ndnprivacy/internal/netsim"
	"ndnprivacy/internal/telemetry"
)

// instrumentedLAN runs the Figure 3(a) scenario with telemetry attached
// and returns the attack result plus the rendered metrics and trace.
func instrumentedLAN(t *testing.T) (*attack.Result, []byte, []byte) {
	t.Helper()
	reg := telemetry.NewRegistry()
	var traceBuf bytes.Buffer
	tw := telemetry.NewTraceWriter(&traceBuf)
	res, err := attack.RunLAN(attack.ScenarioConfig{
		Seed:    7,
		Objects: 12,
		Runs:    2,
		Observe: func(run int, sim *netsim.Simulator) {
			sim.SetTelemetry(reg, tw)
			telemetry.Emit(tw, telemetry.Event{
				At:   int64(sim.Now()),
				Type: telemetry.EvRunStart,
				Run:  run,
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	var prom bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	return res, prom.Bytes(), traceBuf.Bytes()
}

// TestSameSeedRunsProduceIdenticalTelemetry is the headline determinism
// guarantee: two full simulations with the same seed must render
// byte-identical Prometheus exposition and NDJSON traces.
func TestSameSeedRunsProduceIdenticalTelemetry(t *testing.T) {
	res1, prom1, trace1 := instrumentedLAN(t)
	res2, prom2, trace2 := instrumentedLAN(t)
	if !bytes.Equal(prom1, prom2) {
		t.Error("same-seed runs rendered different Prometheus exposition")
	}
	if !bytes.Equal(trace1, trace2) {
		t.Error("same-seed runs rendered different traces")
	}
	if res1.Accuracy != res2.Accuracy || !reflect.DeepEqual(res1.Hit, res2.Hit) {
		t.Error("same-seed runs measured different attack results")
	}
}

// TestTelemetryDoesNotPerturbSimulation compares an instrumented run
// against a bare one: attaching the registry and trace writer must not
// change a single sample, so enabling -metrics/-trace can never alter
// the science.
func TestTelemetryDoesNotPerturbSimulation(t *testing.T) {
	instrumented, _, _ := instrumentedLAN(t)
	bare, err := attack.RunLAN(attack.ScenarioConfig{Seed: 7, Objects: 12, Runs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(instrumented.Hit, bare.Hit) || !reflect.DeepEqual(instrumented.Miss, bare.Miss) {
		t.Fatal("telemetry changed the measured RTT samples")
	}
	if instrumented.Accuracy != bare.Accuracy || instrumented.Steps != bare.Steps {
		t.Fatal("telemetry changed accuracy or simulator step count")
	}
}

// TestTraceContentsCoverTheStack decodes an end-to-end trace and checks
// the record stream is well-formed and covers the layers the scenario
// exercises.
func TestTraceContentsCoverTheStack(t *testing.T) {
	_, _, traceBytes := instrumentedLAN(t)
	events, err := telemetry.DecodeTrace(bytes.NewReader(traceBytes))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("trace is empty")
	}
	if events[0].Type != telemetry.EvRunStart {
		t.Fatalf("trace must open with run_start, got %q", events[0].Type)
	}
	seen := make(map[string]int)
	for _, ev := range events {
		seen[ev.Type]++
		if ev.At < 0 {
			t.Fatalf("negative virtual timestamp in %#v", ev)
		}
	}
	for _, required := range []string{
		telemetry.EvRunStart,
		telemetry.EvInterestForward,
		telemetry.EvCSHit,
		telemetry.EvCSMiss,
		telemetry.EvCSInsert,
		telemetry.EvLinkTx,
		telemetry.EvProbe,
		telemetry.EvCMDecision,
	} {
		if seen[required] == 0 {
			t.Errorf("trace contains no %s events", required)
		}
	}
	if seen[telemetry.EvRunStart] != 2 {
		t.Errorf("expected 2 run_start records, got %d", seen[telemetry.EvRunStart])
	}
}

// TestMetricsAgreeWithResult cross-checks one counter family against the
// scenario's ground truth: every adversary probe appears in the trace,
// and the router's undisguised hit counter matches the number of
// hit-labeled samples.
func TestMetricsAgreeWithResult(t *testing.T) {
	res, prom, traceBytes := instrumentedLAN(t)
	events, err := telemetry.DecodeTrace(bytes.NewReader(traceBytes))
	if err != nil {
		t.Fatal(err)
	}
	probes := 0
	for _, ev := range events {
		if ev.Type == telemetry.EvProbe {
			probes++
		}
	}
	if want := len(res.Hit) + len(res.Miss); probes != want {
		t.Errorf("trace has %d probe records, want %d (one per sample)", probes, want)
	}
	wantLine := []byte("fwd_cache_hits_total{node=\"R\"} ")
	if !bytes.Contains(prom, wantLine) {
		t.Errorf("exposition lacks the router hit counter:\n%s", prom)
	}
}

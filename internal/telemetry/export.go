package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4). Samples appear in snapshot order — sorted by
// identifier — with one # TYPE header per metric family, so the output
// is byte-stable for identical snapshots.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	lastFamily := ""
	for _, c := range s.Counters {
		family, _ := splitID(c.Name)
		if family != lastFamily {
			fmt.Fprintf(&b, "# TYPE %s counter\n", family)
			lastFamily = family
		}
		fmt.Fprintf(&b, "%s %s\n", c.Name, strconv.FormatUint(c.Value, 10))
	}
	lastFamily = ""
	for _, g := range s.Gauges {
		family, _ := splitID(g.Name)
		if family != lastFamily {
			fmt.Fprintf(&b, "# TYPE %s gauge\n", family)
			lastFamily = family
		}
		fmt.Fprintf(&b, "%s %s\n", g.Name, strconv.FormatInt(g.Value, 10))
	}
	lastFamily = ""
	for _, h := range s.Histograms {
		family, labels := splitID(h.Name)
		if family != lastFamily {
			fmt.Fprintf(&b, "# TYPE %s histogram\n", family)
			lastFamily = family
		}
		cumulative := uint64(0)
		for i, bucket := range h.Buckets {
			cumulative += bucket
			le := "+Inf"
			if i < len(h.Bounds) {
				le = formatFloat(h.Bounds[i])
			}
			fmt.Fprintf(&b, "%s_bucket{%s} %d\n", family, joinLabels(labels, `le="`+le+`"`), cumulative)
		}
		fmt.Fprintf(&b, "%s_sum%s %s\n", family, braced(labels), formatFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count%s %d\n", family, braced(labels), h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON renders the snapshot as one indented JSON document.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteFile writes the snapshot to path, choosing the format by
// extension: .json gets the JSON document, everything else the
// Prometheus text exposition. Both cmd binaries share this helper so
// -metrics behaves identically everywhere.
func (s Snapshot) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = s.WriteJSON(f)
	} else {
		err = s.WritePrometheus(f)
	}
	if closeErr := f.Close(); err == nil {
		err = closeErr
	}
	return err
}

// formatFloat renders a float compactly and deterministically, using
// Prometheus spellings for the infinities.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// joinLabels combines an existing label body with one extra label.
func joinLabels(existing, extra string) string {
	if existing == "" {
		return extra
	}
	return existing + "," + extra
}

// braced re-wraps a label body in braces, or returns "" when unlabeled.
func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

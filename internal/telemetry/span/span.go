// Package span records deterministic, virtual-time causal traces of
// interest lifecycles. Each interest admitted at a consumer opens a
// root span whose trace ID derives from the run seed, the content name
// hash, and the issue sequence — never a wall clock or global rand —
// so a fixed seed reproduces the trace byte for byte. Forwarders,
// links, PIT aggregation, content-store lookups, and countermeasure
// decisions attach child spans, making a finished trace the full
// causal tree of one fetch.
//
// The package depends only on the standard library: telemetry imports
// it, and the simulator packages reach it through the
// telemetry.Provider capability, so no import cycle forms.
package span

import "sort"

// Span kinds. A kind names the stage of an interest's life a record
// covers; the analyzer keys its latency decomposition off these.
const (
	// KindFetch is the root span: consumer send → delivery or timeout.
	KindFetch = "fetch"
	// KindHop covers one forwarder's handling of the interest,
	// admission through terminal action.
	KindHop = "hop"
	// KindLink covers one link traversal (propagation + serialization).
	KindLink = "link"
	// KindCS is a content-store lookup (hit, miss, or view-probe).
	KindCS = "cs"
	// KindCM is a countermeasure decision; Value carries the added
	// delay in nanoseconds.
	KindCM = "cm"
	// KindCoin is a Random-Cache threshold draw; Value carries the
	// drawn threshold.
	KindCoin = "cm_coin"
	// KindPIT marks PIT aggregation of a duplicate interest.
	KindPIT = "pit"
	// KindUpstream covers a forwarder's wait between sending an
	// interest upstream and the matching Data arriving.
	KindUpstream = "upstream"
	// KindResidency tracks one content-store entry's cache lifetime,
	// insert through eviction. Residency spans have no trace parent.
	KindResidency = "cs_entry"
	// KindDisk covers a second-tier (disk) read on a tiered content
	// store's hit path; Value carries the modeled service cost in
	// nanoseconds. Its presence under a hop marks the serve as a
	// disk hit — the analyzer's three-way ground truth.
	KindDisk = "disk"
	// KindTier marks inter-tier movement of a cached entry (promotion
	// to RAM or demotion to disk). Tier spans are points outside any
	// trace, like residency spans.
	KindTier = "cs_tier"
)

// Context addresses a position in a trace tree: the trace a span
// belongs to and the span itself, as parent for children. The zero
// Context means "untraced"; recording against it is a no-op for
// trace-scoped kinds.
type Context struct {
	Trace uint64
	Span  uint64
}

// Record is one completed (or still-open) span. Start and End are
// virtual-time offsets in nanoseconds from simulation start. Value is
// kind-specific payload: delay for KindCM, threshold for KindCoin,
// packet size for KindLink.
type Record struct {
	Trace  uint64 `json:"trace,omitempty"`
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Kind   string `json:"kind"`
	Node   string `json:"node,omitempty"`
	Name   string `json:"name,omitempty"`
	Action string `json:"action,omitempty"`
	Start  int64  `json:"start"`
	End    int64  `json:"end"`
	Value  uint64 `json:"value,omitempty"`
}

// chunkSize is the records-per-chunk growth quantum: span storage
// grows by whole chunks so per-record appends never reallocate.
const chunkSize = 256

// Tracer allocates span IDs and stores records. A nil *Tracer is the
// disabled state: every method is nil-receiver-safe and free, so call
// sites need no branches. Tracer is not safe for concurrent use; the
// sweep engine gives each cell its own tracer and merges in cell order.
type Tracer struct {
	seed   uint64
	roots  uint64
	nextID uint64
	chunks [][]Record
	count  int
}

// NewTracer returns an enabled tracer deriving trace IDs from seed.
func NewTracer(seed int64) *Tracer {
	t := &Tracer{}
	t.SetSeed(seed)
	return t
}

// SetSeed re-keys trace-ID derivation. The sweep merger pre-allocates
// per-cell tracers before per-cell seeds are derived, so the seed is
// late-bound here. No-op on a nil tracer.
func (t *Tracer) SetSeed(seed int64) {
	if t == nil {
		return
	}
	t.seed = splitmix64(uint64(seed))
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Len returns the number of records stored.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return t.count
}

// Reserve pre-grows storage to hold at least n records so subsequent
// hot-path appends stay allocation-free.
func (t *Tracer) Reserve(n int) {
	if t == nil {
		return
	}
	for t.capacity() < n {
		t.chunks = append(t.chunks, make([]Record, 0, chunkSize))
	}
}

func (t *Tracer) capacity() int {
	c := 0
	for _, ch := range t.chunks {
		c += cap(ch)
	}
	return c
}

// alloc appends one zero record and returns a pointer into chunk
// storage. Growth happens one chunk at a time, so the amortized
// per-record cost is a bump append into pre-sized backing.
//
//ndnlint:hotpath — every span record lands here
func (t *Tracer) alloc() *Record {
	if n := len(t.chunks); n > 0 {
		last := t.chunks[n-1]
		if len(last) < cap(last) {
			last = last[:len(last)+1]
			t.chunks[n-1] = last
			t.count++
			return &last[len(last)-1]
		}
	}
	ch := make([]Record, 1, chunkSize) //ndnlint:allow alloccheck — chunk-amortized pool growth
	t.chunks = append(t.chunks, ch)    //ndnlint:allow alloccheck — chunk-amortized pool growth
	t.count++
	return &ch[0]
}

// StartRoot opens a fetch root span at virtual time at. The trace ID
// mixes the tracer seed, the content-name hash, and the per-tracer
// issue sequence through SplitMix64, so identical seeds yield
// identical IDs and distinct issues never collide in practice.
//
//ndnlint:hotpath — consumer interest-admission path
func (t *Tracer) StartRoot(nameHash uint64, node, name string, at int64) (*Record, Context) {
	if t == nil {
		return nil, Context{}
	}
	t.roots++
	// Nested mixing, not an XOR of two mixed terms: symmetric XOR would
	// cancel whenever nameHash equals the issue sequence, colliding the
	// trace IDs.
	tid := splitmix64(splitmix64(t.seed^splitmix64(nameHash)) + t.roots)
	if tid == 0 {
		tid = 1 // reserve 0 for "untraced"
	}
	t.nextID++
	r := t.alloc()
	r.Trace = tid
	r.ID = t.nextID
	r.Kind = KindFetch
	r.Node = node
	r.Name = name
	r.Start = at
	r.End = at
	return r, Context{Trace: tid, Span: t.nextID}
}

// Begin opens a child span under parent at virtual time at. For
// trace-scoped kinds pass the propagated context; residency spans pass
// a zero context (no trace). Returns nil and a zero context when the
// tracer is disabled.
//
//ndnlint:hotpath — forwarder interest/data paths
func (t *Tracer) Begin(parent Context, kind, node, name string, at int64) (*Record, Context) {
	if t == nil {
		return nil, Context{}
	}
	t.nextID++
	r := t.alloc()
	r.Trace = parent.Trace
	r.ID = t.nextID
	r.Parent = parent.Span
	r.Kind = kind
	r.Node = node
	r.Name = name
	r.Start = at
	r.End = at
	return r, Context{Trace: parent.Trace, Span: t.nextID}
}

// End closes r at virtual time at with the given terminal action.
// Safe on a nil tracer or a nil record.
//
//ndnlint:hotpath — forwarder interest/data paths
func (t *Tracer) End(r *Record, at int64, action string) {
	if t == nil || r == nil {
		return
	}
	r.End = at
	r.Action = action
}

// Span records a completed child span in one call — the common case
// for point-in-time or precomputed-interval stages (CS lookups,
// countermeasure decisions, link traversals).
//
//ndnlint:hotpath — forwarder interest/data paths
func (t *Tracer) Span(parent Context, kind, node, name, action string, start, end int64, value uint64) Context {
	if t == nil {
		return Context{}
	}
	t.nextID++
	r := t.alloc()
	r.Trace = parent.Trace
	r.ID = t.nextID
	r.Parent = parent.Span
	r.Kind = kind
	r.Node = node
	r.Name = name
	r.Action = action
	r.Start = start
	r.End = end
	r.Value = value
	return Context{Trace: parent.Trace, Span: t.nextID}
}

// Reset discards every stored record and restarts the ID and trace
// sequences, so a reset tracer records exactly what a fresh one with
// the same seed would. Storage is released except the first chunk,
// which keeps long-lived callers that export in batches (benchmark
// loops, streaming drivers) from growing without bound.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.roots, t.nextID, t.count = 0, 0, 0
	if len(t.chunks) > 0 {
		t.chunks = t.chunks[:1]
		// alloc re-slices into retained chunk memory without clearing
		// it (that would cost the hot path), so scrub the stale records
		// here where Reset already pays a full storage pass.
		ch := t.chunks[0][:cap(t.chunks[0])]
		for i := range ch {
			ch[i] = Record{}
		}
		t.chunks[0] = ch[:0]
	}
}

// Records returns a flattened copy of every stored record in
// recording order.
func (t *Tracer) Records() []Record {
	if t == nil || t.count == 0 {
		return nil
	}
	out := make([]Record, 0, t.count)
	for _, ch := range t.chunks {
		out = append(out, ch...)
	}
	return out
}

// Merge appends records produced by another tracer (a sweep cell),
// rebasing their span IDs past this tracer's sequence so batches from
// different cells — which each count IDs from 1 — stay unique in the
// merged set. Parent links are rebased by the same offset, so causal
// chains survive intact. Rebasing depends only on merge order (cell
// order under the sweep engine), keeping merged output deterministic.
func (t *Tracer) Merge(records []Record) {
	if t == nil || len(records) == 0 {
		return
	}
	offset := t.nextID
	var maxID uint64
	for i := range records {
		r := t.alloc()
		*r = records[i]
		if records[i].ID > maxID {
			maxID = records[i].ID
		}
		r.ID += offset
		if r.Parent != 0 {
			r.Parent += offset
		}
	}
	t.nextID = offset + maxID
}

// SortStable orders records by (trace, start, id): traces group
// together, spans inside a trace in causal-compatible time order. Used
// by exporters that want grouped output; recording order is already
// deterministic, so sorting is presentation only.
func SortStable(records []Record) {
	sort.SliceStable(records, func(i, j int) bool {
		a, b := records[i], records[j]
		if a.Trace != b.Trace {
			return a.Trace < b.Trace
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.ID < b.ID
	})
}

// splitmix64 is the SplitMix64 output mixer — the same finalizer the
// sweep engine uses for per-cell seed derivation. Reimplemented here
// (three constants, four lines) to keep the package stdlib-only.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Exporters: byte-stable NDJSON (the TraceWriter convention — one
// JSON object per line, fields in struct order) and Chrome
// trace_event JSON loadable in Perfetto or chrome://tracing. Both
// round-trip losslessly: Decode*(Write*(records)) == records.
package span

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// WriteNDJSON emits one JSON object per record, in slice order. Output
// is byte-stable: field order follows the Record struct, and no
// timestamps or environment leak in.
func WriteNDJSON(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	for i := range records {
		line, err := json.Marshal(&records[i])
		if err != nil {
			return fmt.Errorf("span: marshal record %d: %w", i, err)
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeNDJSON parses WriteNDJSON output. Blank lines are skipped so
// concatenated exports decode cleanly.
func DecodeNDJSON(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Record
	ln := 0
	for sc.Scan() {
		ln++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("span: line %d: %w", ln, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// chromeEvent is one entry of the Chrome trace_event JSON array. Ph
// "X" is a complete event (ts + dur); "M" is metadata (thread names).
// Exact nanosecond values and the 64-bit IDs ride in Args as strings,
// because ts/dur are microseconds and JSON numbers lose 64-bit
// precision — Args is what DecodeChrome reads back, so the round trip
// is lossless.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  *float64          `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the top-level trace_event object form.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome emits records as a Chrome trace_event JSON document.
// Each node becomes one named thread (tid assigned in sorted-node
// order); each record one "X" complete event whose ts/dur are the
// virtual-time interval in microseconds. Load the file in Perfetto or
// chrome://tracing to see per-trace causal timelines.
func WriteChrome(w io.Writer, records []Record) error {
	nodes := make(map[string]int)
	var names []string
	for i := range records {
		if _, seen := nodes[records[i].Node]; !seen {
			nodes[records[i].Node] = 0
			names = append(names, records[i].Node)
		}
	}
	sort.Strings(names)
	doc := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for i, name := range names {
		nodes[name] = i + 1
		label := name
		if label == "" {
			label = "(none)"
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name",
			Ph:   "M",
			Pid:  1,
			Tid:  i + 1,
			Args: map[string]string{"name": label},
		})
	}
	for i := range records {
		r := &records[i]
		dur := float64(r.End-r.Start) / 1e3
		if dur < 0 {
			dur = 0 // open span exported before End; raw values stay in args
		}
		args := map[string]string{
			"id":       fmt.Sprintf("%016x", r.ID),
			"kind":     r.Kind,
			"start_ns": strconv.FormatInt(r.Start, 10),
			"end_ns":   strconv.FormatInt(r.End, 10),
		}
		if r.Trace != 0 {
			args["trace"] = fmt.Sprintf("%016x", r.Trace)
		}
		if r.Parent != 0 {
			args["parent"] = fmt.Sprintf("%016x", r.Parent)
		}
		if r.Node != "" {
			args["node"] = r.Node
		}
		if r.Name != "" {
			args["content"] = r.Name
		}
		if r.Action != "" {
			args["action"] = r.Action
		}
		if r.Value != 0 {
			args["value"] = strconv.FormatUint(r.Value, 10)
		}
		name := r.Kind
		if r.Action != "" {
			name = r.Kind + ":" + r.Action
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: name,
			Ph:   "X",
			Ts:   float64(r.Start) / 1e3,
			Dur:  &dur,
			Pid:  1,
			Tid:  nodes[r.Node],
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&doc)
}

// DecodeChrome parses WriteChrome output back into records, reading
// the exact values from each "X" event's args and skipping metadata
// events. The result preserves WriteChrome's input order.
func DecodeChrome(r io.Reader) ([]Record, error) {
	var doc chromeTrace
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("span: chrome trace: %w", err)
	}
	var out []Record
	for i, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		rec, err := chromeArgs(ev.Args)
		if err != nil {
			return nil, fmt.Errorf("span: chrome event %d: %w", i, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

// chromeArgs reconstructs one Record from an "X" event's args map.
func chromeArgs(args map[string]string) (Record, error) {
	var rec Record
	var err error
	if rec.ID, err = hexField(args, "id"); err != nil {
		return rec, err
	}
	if rec.Trace, err = hexField(args, "trace"); err != nil {
		return rec, err
	}
	if rec.Parent, err = hexField(args, "parent"); err != nil {
		return rec, err
	}
	rec.Kind = args["kind"]
	rec.Node = args["node"]
	rec.Name = args["content"]
	rec.Action = args["action"]
	if v, ok := args["start_ns"]; ok {
		if rec.Start, err = strconv.ParseInt(v, 10, 64); err != nil {
			return rec, fmt.Errorf("start_ns: %w", err)
		}
	}
	if v, ok := args["end_ns"]; ok {
		if rec.End, err = strconv.ParseInt(v, 10, 64); err != nil {
			return rec, fmt.Errorf("end_ns: %w", err)
		}
	}
	if v, ok := args["value"]; ok {
		if rec.Value, err = strconv.ParseUint(v, 10, 64); err != nil {
			return rec, fmt.Errorf("value: %w", err)
		}
	}
	return rec, nil
}

// hexField parses one optional %016x-encoded args field.
func hexField(args map[string]string, key string) (uint64, error) {
	v, ok := args[key]
	if !ok {
		return 0, nil
	}
	n, err := strconv.ParseUint(v, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", key, err)
	}
	return n, nil
}

// WriteFile writes records to path, choosing the format by extension:
// ".json" selects Chrome trace_event, anything else NDJSON.
func WriteFile(path string, records []Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	if strings.EqualFold(filepath.Ext(path), ".json") {
		werr = WriteChrome(f, records)
	} else {
		werr = WriteNDJSON(f, records)
	}
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

package span

import (
	"bytes"
	"reflect"
	"testing"
)

func TestStartRootDeterministicIDs(t *testing.T) {
	a, b := NewTracer(42), NewTracer(42)
	for i := 0; i < 16; i++ {
		ra, ctxA := a.StartRoot(uint64(i*7), "A", "/p/x", int64(i))
		rb, ctxB := b.StartRoot(uint64(i*7), "A", "/p/x", int64(i))
		if ctxA != ctxB {
			t.Fatalf("issue %d: contexts differ: %+v vs %+v", i, ctxA, ctxB)
		}
		if ra.Trace == 0 {
			t.Fatal("trace ID 0 is reserved for untraced")
		}
		if *ra != *rb {
			t.Fatalf("issue %d: records differ", i)
		}
	}
	other := NewTracer(43)
	_, ctx42 := NewTracer(42).StartRoot(9, "A", "/p/x", 0)
	_, ctx43 := other.StartRoot(9, "A", "/p/x", 0)
	if ctx42.Trace == ctx43.Trace {
		t.Error("different seeds produced the same trace ID")
	}
}

func TestNilTracerIsSafeAndFree(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	if tr.Len() != 0 || tr.Records() != nil {
		t.Error("nil tracer holds records")
	}
	tr.SetSeed(7)
	tr.Reserve(100)
	tr.Merge([]Record{{ID: 1}})
	root, ctx := tr.StartRoot(1, "A", "/x", 0)
	if root != nil || ctx != (Context{}) {
		t.Error("nil tracer returned a live root")
	}
	child, cctx := tr.Begin(ctx, KindHop, "R", "/x", 0)
	if child != nil || cctx != (Context{}) {
		t.Error("nil tracer returned a live child")
	}
	tr.End(child, 5, "ok")
	tr.Span(ctx, KindCS, "R", "/x", "hit", 0, 0, 0)
}

func TestBeginEndSpanRecording(t *testing.T) {
	tr := NewTracer(1)
	root, ctx := tr.StartRoot(11, "A", "/p/1", 100)
	hop, hctx := tr.Begin(ctx, KindHop, "R", "/p/1", 150)
	if hop.Parent != root.ID || hop.Trace != root.Trace {
		t.Errorf("hop parentage wrong: %+v", hop)
	}
	tr.Span(hctx, KindCS, "R", "/p/1", "hit", 200, 200, 0)
	tr.End(hop, 250, "serve")
	tr.End(root, 400, "ok")
	if hop.End != 250 || hop.Action != "serve" {
		t.Errorf("End did not close the hop: %+v", hop)
	}
	recs := tr.Records()
	if len(recs) != 3 || tr.Len() != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if recs[2].Parent != hop.ID || recs[2].Action != "hit" {
		t.Errorf("one-shot span wrong: %+v", recs[2])
	}
}

func TestMergeRebasesIDs(t *testing.T) {
	target := NewTracer(0)
	cellA, cellB := NewTracer(1), NewTracer(2)
	_, actx := cellA.StartRoot(1, "A", "/a", 0)
	cellA.Begin(actx, KindHop, "R", "/a", 1)
	_, bctx := cellB.StartRoot(2, "A", "/b", 0)
	cellB.Begin(bctx, KindHop, "R", "/b", 1)

	target.Merge(cellA.Records())
	target.Merge(cellB.Records())
	recs := target.Records()
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	seen := map[uint64]bool{}
	for _, r := range recs {
		if seen[r.ID] {
			t.Fatalf("duplicate span ID %d after merge", r.ID)
		}
		seen[r.ID] = true
	}
	// Parent chains must survive the rebase.
	if recs[1].Parent != recs[0].ID {
		t.Errorf("cell A chain broken: hop parent %d, root %d", recs[1].Parent, recs[0].ID)
	}
	if recs[3].Parent != recs[2].ID {
		t.Errorf("cell B chain broken: hop parent %d, root %d", recs[3].Parent, recs[2].ID)
	}
	// Growing the merged tracer afterwards must not collide either.
	extra, _ := target.StartRoot(3, "A", "/c", 0)
	if seen[extra.ID] {
		t.Errorf("post-merge root reused ID %d", extra.ID)
	}
}

func TestSortStable(t *testing.T) {
	recs := []Record{
		{Trace: 2, ID: 3, Start: 5},
		{Trace: 1, ID: 2, Start: 9},
		{Trace: 1, ID: 1, Start: 9},
		{Trace: 1, ID: 4, Start: 0},
	}
	SortStable(recs)
	want := []uint64{4, 1, 2, 3}
	for i, id := range want {
		if recs[i].ID != id {
			t.Fatalf("position %d: got ID %d, want %d", i, recs[i].ID, id)
		}
	}
}

func TestReserveMakesRecordingAllocFree(t *testing.T) {
	tr := NewTracer(9)
	tr.Reserve(4 * 1000)
	var ctx Context
	allocs := testing.AllocsPerRun(1000, func() {
		root, rctx := tr.StartRoot(7, "A", "/p", 0)
		_, hctx := tr.Begin(rctx, KindHop, "R", "/p", 1)
		tr.Span(hctx, KindCS, "R", "/p", "hit", 2, 2, 0)
		tr.End(root, 3, "ok")
		ctx = rctx
	})
	_ = ctx
	if allocs != 0 {
		t.Errorf("recording into reserved storage allocated %.1f/op, want 0", allocs)
	}
}

func TestResetRestartsSequences(t *testing.T) {
	record := func(tr *Tracer) []Record {
		root, rctx := tr.StartRoot(7, "A", "/p", 0)
		_, hctx := tr.Begin(rctx, KindHop, "R", "/p", 1)
		tr.Span(hctx, KindCS, "R", "/p", "hit", 2, 2, 0)
		tr.End(root, 3, "ok")
		return tr.Records()
	}
	fresh := record(NewTracer(9))
	reused := NewTracer(9)
	// Push past one chunk so Reset exercises the storage-release path.
	for i := 0; i < 2*chunkSize; i++ {
		reused.Span(Context{Trace: 1, Span: 1}, KindCS, "R", "/p", "miss", 0, 0, 0)
	}
	reused.Reset()
	if reused.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", reused.Len())
	}
	if got := record(reused); !reflect.DeepEqual(got, fresh) {
		t.Errorf("reset tracer records differ from fresh tracer:\n%+v\nvs\n%+v", got, fresh)
	}
	var nilTracer *Tracer
	nilTracer.Reset() // must not panic
}

func TestDisabledRecordingAllocFree(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		root, rctx := tr.StartRoot(7, "A", "/p", 0)
		_, hctx := tr.Begin(rctx, KindHop, "R", "/p", 1)
		tr.Span(hctx, KindCS, "R", "/p", "hit", 2, 2, 0)
		tr.End(root, 3, "ok")
	})
	if allocs != 0 {
		t.Errorf("disabled tracer allocated %.1f/op, want 0", allocs)
	}
}

func TestWriteNDJSONByteStable(t *testing.T) {
	build := func() []byte {
		tr := NewTracer(5)
		_, ctx := tr.StartRoot(3, "A", "/p/0", 10)
		tr.Span(ctx, KindLink, "A<->R", "", "tx", 10, 20, 33)
		var buf bytes.Buffer
		if err := WriteNDJSON(&buf, tr.Records()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(build(), build()) {
		t.Error("NDJSON output not byte-stable across identical runs")
	}
}

func TestAnalyzeDecomposition(t *testing.T) {
	tr := NewTracer(3)
	// Fetch → hop(R): CS hit, CM delayed-serve 5ms. Total 12ms.
	root, ctx := tr.StartRoot(1, "A", "/p/hit", 0)
	hop, hctx := tr.Begin(ctx, KindHop, "R", "/p/hit", 1_000_000)
	tr.Span(hctx, KindCS, "R", "/p/hit", "hit", 1_000_000, 1_000_000, 0)
	tr.Span(hctx, KindCM, "R", "/p/hit", "delayed-serve", 1_000_000, 6_000_000, 5_000_000)
	tr.End(hop, 6_000_000, "delayed-serve")
	tr.End(root, 12_000_000, "ok")

	// Fetch → hop(R): CS miss, upstream wait 8ms. Total 20ms.
	root2, ctx2 := tr.StartRoot(2, "A", "/p/miss", 0)
	hop2, hctx2 := tr.Begin(ctx2, KindHop, "R", "/p/miss", 1_000_000)
	tr.Span(hctx2, KindCS, "R", "/p/miss", "miss", 1_000_000, 1_000_000, 0)
	tr.Span(hctx2, KindUpstream, "R", "/p/miss", "data", 1_000_000, 9_000_000, 0)
	tr.End(hop2, 9_000_000, "forward")
	tr.End(root2, 20_000_000, "ok")

	decs := Analyze(tr.Records())
	if len(decs) != 2 {
		t.Fatalf("got %d decompositions, want 2", len(decs))
	}
	hit := decs[0]
	if !hit.CacheServed || hit.ServedBy != "R" {
		t.Errorf("hit trace not recognized as cache-served: %+v", hit)
	}
	if hit.TotalNS != 12_000_000 || hit.CountermeasureNS != 5_000_000 || hit.UpstreamNS != 0 {
		t.Errorf("hit decomposition wrong: %+v", hit)
	}
	if hit.NetworkNS != 7_000_000 {
		t.Errorf("hit network share = %d, want 7ms", hit.NetworkNS)
	}
	miss := decs[1]
	if miss.CacheServed {
		t.Errorf("miss trace marked cache-served: %+v", miss)
	}
	if miss.UpstreamNS != 8_000_000 || miss.NetworkNS != 12_000_000 {
		t.Errorf("miss decomposition wrong: %+v", miss)
	}
	sums := Summarize(decs)
	if len(sums) != 2 || sums[0].Class != "hit" || sums[1].Class != "miss" {
		t.Fatalf("summary classes wrong: %+v", sums)
	}
	if sums[0].Count != 1 || sums[0].MeanTotalNS != 12_000_000 {
		t.Errorf("hit summary wrong: %+v", sums[0])
	}
}

func TestAnalyzeEdgeNodeViaChainDepth(t *testing.T) {
	// Two hops: A (edge, depth 1) then R (depth 2); both record CS
	// lookups. Upstream at the edge node A only counts when no cache
	// served.
	tr := NewTracer(4)
	root, ctx := tr.StartRoot(1, "A", "/p/x", 0)
	hopA, actx := tr.Begin(ctx, KindHop, "A", "/p/x", 0)
	tr.Span(actx, KindCS, "A", "/p/x", "miss", 0, 0, 0)
	tr.Span(actx, KindUpstream, "A", "/p/x", "data", 0, 10_000_000, 0)
	hopR, rctx := tr.Begin(actx, KindHop, "R", "/p/x", 2_000_000)
	tr.Span(rctx, KindCS, "R", "/p/x", "miss", 2_000_000, 2_000_000, 0)
	tr.Span(rctx, KindUpstream, "R", "/p/x", "data", 2_000_000, 8_000_000, 0)
	tr.End(hopR, 2_000_000, "forward")
	tr.End(hopA, 0, "forward")
	tr.End(root, 12_000_000, "ok")

	decs := Analyze(tr.Records())
	if len(decs) != 1 {
		t.Fatalf("got %d decompositions, want 1", len(decs))
	}
	d := decs[0]
	if d.UpstreamNS != 10_000_000 {
		t.Errorf("edge upstream = %dns, want the A-node wait (10ms), not R's", d.UpstreamNS)
	}
	if d.NetworkNS != 2_000_000 {
		t.Errorf("network share = %dns, want 2ms", d.NetworkNS)
	}
}

func TestAnalyzeIgnoresTracelessRecords(t *testing.T) {
	tr := NewTracer(5)
	tr.Span(Context{}, KindResidency, "R", "/p/x", "evict-lru", 0, 5, 0)
	if decs := Analyze(tr.Records()); len(decs) != 0 {
		t.Fatalf("traceless records produced %d decompositions", len(decs))
	}
}

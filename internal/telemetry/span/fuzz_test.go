package span

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// fuzzRecords builds a two-record slice from raw fuzz inputs. Strings
// are coerced to valid UTF-8 first: encoding/json replaces invalid
// bytes with U+FFFD on marshal, which would fail the round-trip
// comparison for inputs no tracer can produce.
func fuzzRecords(trace, id, parent, value uint64, kind, node, name, action string, start, end int64) []Record {
	r := Record{
		Trace:  trace,
		ID:     id,
		Parent: parent,
		Kind:   strings.ToValidUTF8(kind, "�"),
		Node:   strings.ToValidUTF8(node, "�"),
		Name:   strings.ToValidUTF8(name, "�"),
		Action: strings.ToValidUTF8(action, "�"),
		Start:  start,
		End:    end,
		Value:  value,
	}
	second := r
	second.ID = id + 1
	second.Node = "" // exercise the empty-node thread mapping
	return []Record{r, second}
}

// FuzzSpanNDJSONRoundTrip asserts DecodeNDJSON(WriteNDJSON(x)) == x for
// arbitrary record contents.
func FuzzSpanNDJSONRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint64(1), uint64(42), "hop", "R", "/p/obj/1", "forward", int64(100), int64(900))
	f.Add(uint64(0), uint64(7), uint64(0), uint64(0), "cs_entry", "", "", "", int64(-5), int64(-1))
	f.Add(^uint64(0), ^uint64(0), uint64(1), ^uint64(0), "cm", "ccnd", "/p", "delayed-serve", int64(1<<62), int64(-1<<62))
	f.Fuzz(func(t *testing.T, trace, id, parent, value uint64, kind, node, name, action string, start, end int64) {
		records := fuzzRecords(trace, id, parent, value, kind, node, name, action, start, end)
		var buf bytes.Buffer
		if err := WriteNDJSON(&buf, records); err != nil {
			t.Fatalf("write: %v", err)
		}
		decoded, err := DecodeNDJSON(&buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(records, decoded) {
			t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", records, decoded)
		}
	})
}

// FuzzSpanChromeRoundTrip asserts DecodeChrome(WriteChrome(x)) == x:
// the exact nanosecond intervals and 64-bit IDs survive the trace_event
// encoding even though its native ts/dur fields are lossy microsecond
// floats.
func FuzzSpanChromeRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint64(1), uint64(42), "hop", "R", "/p/obj/1", "forward", int64(100), int64(900))
	f.Add(uint64(0), uint64(7), uint64(0), uint64(0), "cs_entry", "", "", "", int64(-5), int64(-1))
	f.Add(^uint64(0), ^uint64(0), uint64(1), ^uint64(0), "cm", "ccnd", "/p", "delayed-serve", int64(1<<62), int64(-1<<62))
	f.Fuzz(func(t *testing.T, trace, id, parent, value uint64, kind, node, name, action string, start, end int64) {
		records := fuzzRecords(trace, id, parent, value, kind, node, name, action, start, end)
		var buf bytes.Buffer
		if err := WriteChrome(&buf, records); err != nil {
			t.Fatalf("write: %v", err)
		}
		decoded, err := DecodeChrome(&buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(records, decoded) {
			t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", records, decoded)
		}
	})
}

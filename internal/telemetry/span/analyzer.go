// Analyzer: reduces a flat record set to per-trace latency
// decompositions — the ground truth the attack package checks the
// prober's timing inference against.
package span

import "sort"

// Decomposition is one trace's latency breakdown. All durations are
// virtual-time nanoseconds.
type Decomposition struct {
	// Trace identifies the fetch; Name and Node echo the root span's
	// content name and consumer-side forwarder.
	Trace uint64
	Name  string
	Node  string
	// Action is the root span's terminal action ("ok" or "timeout").
	Action string
	// TotalNS is the consumer-observed latency: root end − start.
	TotalNS int64
	// CountermeasureNS is the summed artificial delay countermeasure
	// decisions added along the path.
	CountermeasureNS int64
	// UpstreamNS is the edge forwarder's wait for upstream content: 0
	// when the edge cache served. Total − Countermeasure − Disk −
	// Upstream is the consumer↔edge network share.
	UpstreamNS int64
	// DiskNS is the summed second-tier (disk) read cost paid along the
	// path; nonzero only when a tiered store served from its second
	// tier. DiskServed reports that causally: together with CacheServed
	// it yields the three-way RAM-hit / disk-hit / miss ground truth.
	DiskNS     int64
	DiskServed bool
	// NetworkNS is the residual consumer↔edge share.
	NetworkNS int64
	// CacheServed reports whether any cache on the path served the
	// content (a countermeasure decision with a serve action); ServedBy
	// names that node.
	CacheServed bool
	ServedBy    string
	// Aggregated reports whether some PIT collapsed this interest onto
	// an already-pending one.
	Aggregated bool
	// TimedOut reports whether the consumer gave up before delivery.
	TimedOut bool
}

// Analyze groups records by trace and reduces each to its
// decomposition. Results are ordered by root-span record order (the
// order fetches were issued), so output is deterministic. Records
// without a trace (residency spans, view probes) are ignored.
func Analyze(records []Record) []Decomposition {
	// Index spans by ID for parent-chain walks, and group by trace.
	// Maps are lookup-only; iteration below follows slice order.
	byID := make(map[uint64]*Record, len(records))
	byTrace := make(map[uint64][]*Record)
	var rootOrder []uint64
	for i := range records {
		r := &records[i]
		if r.Trace == 0 {
			continue
		}
		byID[r.ID] = r
		byTrace[r.Trace] = append(byTrace[r.Trace], r)
		if r.Kind == KindFetch {
			rootOrder = append(rootOrder, r.Trace)
		}
	}
	out := make([]Decomposition, 0, len(rootOrder))
	for _, tid := range rootOrder {
		spans := byTrace[tid]
		d := analyzeTrace(tid, spans, byID)
		if d != nil {
			out = append(out, *d)
		}
	}
	return out
}

// analyzeTrace reduces one trace's spans. Returns nil when the trace
// has no root span.
func analyzeTrace(tid uint64, spans []*Record, byID map[uint64]*Record) *Decomposition {
	var root *Record
	for _, r := range spans {
		if r.Kind == KindFetch {
			root = r
			break
		}
	}
	if root == nil {
		return nil
	}
	d := &Decomposition{
		Trace:    tid,
		Name:     root.Name,
		Node:     root.Node,
		Action:   root.Action,
		TimedOut: root.Action == "timeout",
	}
	d.TotalNS = root.End - root.Start
	// The edge forwarder is the hop nearest the consumer: the CS
	// lookup with the shortest parent chain back to the root.
	edgeNode := ""
	edgeDepth := -1
	for _, r := range spans {
		switch r.Kind {
		case KindCM:
			d.CountermeasureNS += r.End - r.Start
			if r.Action == "serve" || r.Action == "delayed-serve" {
				if !d.CacheServed {
					d.CacheServed = true
					d.ServedBy = r.Node
				}
			}
		case KindDisk:
			d.DiskNS += r.End - r.Start
			d.DiskServed = true
		case KindPIT:
			if r.Action == "aggregate" {
				d.Aggregated = true
			}
		case KindCS:
			depth := chainDepth(r, byID)
			if edgeDepth < 0 || depth < edgeDepth {
				edgeDepth = depth
				edgeNode = r.Node
			}
		}
	}
	if !d.CacheServed && edgeNode != "" {
		for _, r := range spans {
			if r.Kind == KindUpstream && r.Node == edgeNode {
				d.UpstreamNS += r.End - r.Start
			}
		}
	}
	d.NetworkNS = d.TotalNS - d.CountermeasureNS - d.DiskNS - d.UpstreamNS
	return d
}

// chainDepth counts parent links from r back to the trace root.
func chainDepth(r *Record, byID map[uint64]*Record) int {
	depth := 0
	for r.Parent != 0 {
		parent, ok := byID[r.Parent]
		if !ok {
			break
		}
		r = parent
		depth++
		if depth > 1024 {
			break // defensive: malformed cycle in decoded input
		}
	}
	return depth
}

// ClassSummary aggregates decompositions that share a class label.
type ClassSummary struct {
	Class            string
	Count            int
	MeanTotalNS      float64
	MeanNetworkNS    float64
	MeanUpstreamNS   float64
	MeanDiskNS       float64
	MeanCountermeaNS float64
}

// Summarize buckets decompositions into hit/miss/timeout classes and
// averages each latency component — the per-class reference
// distribution the ROADMAP's latency-tier work classifies against.
// Hits served from a tiered store's second tier form their own
// "hit-disk" class; single-tier traces keep the plain "hit" label.
func Summarize(decs []Decomposition) []ClassSummary {
	classes := map[string]*ClassSummary{}
	var order []string
	for _, d := range decs {
		class := "miss"
		switch {
		case d.TimedOut:
			class = "timeout"
		case d.CacheServed && d.DiskServed:
			class = "hit-disk"
		case d.CacheServed:
			class = "hit"
		}
		s, ok := classes[class]
		if !ok {
			s = &ClassSummary{Class: class}
			classes[class] = s
			order = append(order, class)
		}
		s.Count++
		s.MeanTotalNS += float64(d.TotalNS)
		s.MeanNetworkNS += float64(d.NetworkNS)
		s.MeanUpstreamNS += float64(d.UpstreamNS)
		s.MeanDiskNS += float64(d.DiskNS)
		s.MeanCountermeaNS += float64(d.CountermeasureNS)
	}
	sort.Strings(order)
	out := make([]ClassSummary, 0, len(order))
	for _, class := range order {
		s := classes[class]
		n := float64(s.Count)
		s.MeanTotalNS /= n
		s.MeanNetworkNS /= n
		s.MeanUpstreamNS /= n
		s.MeanDiskNS /= n
		s.MeanCountermeaNS /= n
		out = append(out, *s)
	}
	return out
}

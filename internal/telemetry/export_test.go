package telemetry

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func populatedRegistry() *Registry {
	r := NewRegistry()
	r.Counter(ID("fwd_hits_total", "node", "R")).Add(3)
	r.Counter(ID("fwd_hits_total", "node", "A")).Add(1)
	r.Counter("runs_total").Add(2)
	r.Gauge(ID("pit_depth", "node", "R")).Set(-4)
	h := r.Histogram(ID("rtt_ms", "node", "R"), []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := populatedRegistry().Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE fwd_hits_total counter
fwd_hits_total{node="A"} 1
fwd_hits_total{node="R"} 3
# TYPE runs_total counter
runs_total 2
# TYPE pit_depth gauge
pit_depth{node="R"} -4
# TYPE rtt_ms histogram
rtt_ms_bucket{node="R",le="1"} 1
rtt_ms_bucket{node="R",le="10"} 2
rtt_ms_bucket{node="R",le="+Inf"} 3
rtt_ms_sum{node="R"} 55.5
rtt_ms_count{node="R"} 3
`
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestExportByteStable renders the same registry repeatedly and demands
// identical bytes — the property the -metrics flag relies on.
func TestExportByteStable(t *testing.T) {
	reg := populatedRegistry()
	var first bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&first); err != nil {
		t.Fatal(err)
	}
	var firstJSON bytes.Buffer
	if err := reg.Snapshot().WriteJSON(&firstJSON); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		var again bytes.Buffer
		if err := reg.Snapshot().WritePrometheus(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), again.Bytes()) {
			t.Fatalf("Prometheus rendering %d differs from the first", i)
		}
		var againJSON bytes.Buffer
		if err := reg.Snapshot().WriteJSON(&againJSON); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(firstJSON.Bytes(), againJSON.Bytes()) {
			t.Fatalf("JSON rendering %d differs from the first", i)
		}
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	snap := populatedRegistry().Snapshot()
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if len(decoded.Counters) != len(snap.Counters) ||
		len(decoded.Gauges) != len(snap.Gauges) ||
		len(decoded.Histograms) != len(snap.Histograms) {
		t.Fatal("decoded snapshot lost sections")
	}
}

func TestWriteFileFormatByExtension(t *testing.T) {
	dir := t.TempDir()
	reg := populatedRegistry()

	promPath := filepath.Join(dir, "m.prom")
	if err := reg.Snapshot().WriteFile(promPath); err != nil {
		t.Fatal(err)
	}
	prom, err := os.ReadFile(promPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(prom), "# TYPE ") {
		t.Fatalf(".prom file is not Prometheus text: %q", prom[:20])
	}

	jsonPath := filepath.Join(dir, "m.json")
	if err := reg.Snapshot().WriteFile(jsonPath); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf(".json file is not a JSON snapshot: %v", err)
	}
}

package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strings"
	"sync"

	"ndnprivacy/internal/telemetry"
	"ndnprivacy/internal/telemetry/span"
)

// Cell is one independent trial of a sweep: a point on the experiment
// grid. Labels canonically identify the cell (they derive its seed and
// name it in error reports); Run executes the trial with the derived
// seed and a per-cell telemetry provider whose registry and sink are
// merged into the caller's in cell order after the cell finishes.
type Cell[R any] struct {
	// Labels canonically identify the cell within the sweep, e.g.
	// {"fig=5a", "algo=Uniform-Random-Cache", "size=2000"}. Two cells
	// of one sweep must not share the same label sequence, or they
	// would share an RNG stream.
	Labels []string
	// Run executes the trial. seed is DeriveSeed(root, Labels...); all
	// of the cell's randomness must flow from it. prov carries the
	// cell-private metrics registry and trace sink (either may be nil
	// when the sweep has no telemetry attached); the cell must not
	// write to any telemetry shared with other cells.
	Run func(seed int64, prov telemetry.Provider) (R, error)
}

// Options configures one sweep execution.
type Options struct {
	// RootSeed is the experiment seed every cell seed is derived from.
	RootSeed int64
	// Parallel bounds the worker pool; values <= 0 mean
	// runtime.GOMAXPROCS(0). Parallel == 1 executes cells sequentially
	// on the calling goroutine.
	Parallel int
	// Metrics, when non-nil, receives every cell's metrics, merged in
	// cell order once the cell (and all earlier cells) completed.
	Metrics *telemetry.Registry
	// Trace, when non-nil, receives every cell's trace events, replayed
	// in cell order. Events are buffered per cell and flushed as soon
	// as all earlier cells completed, so serial and parallel runs emit
	// byte-identical streams.
	Trace telemetry.Sink
	// Spans, when non-nil, receives every cell's span records, merged in
	// cell order like Trace events. Each cell gets a private tracer
	// seeded with its derived cell seed, so span IDs and output bytes
	// are identical for any Parallel value.
	Spans *span.Tracer
}

// CellError is one failed cell.
type CellError struct {
	// Index is the cell's position in the sweep grid.
	Index int
	// Labels are the failed cell's canonical labels.
	Labels []string
	// Err is what the cell returned (or the recovered panic).
	Err error
}

// Error implements error.
func (e CellError) Error() string {
	return fmt.Sprintf("cell %d [%s]: %v", e.Index, strings.Join(e.Labels, " "), e.Err)
}

// Unwrap exposes the underlying cell failure to errors.Is/As.
func (e CellError) Unwrap() error { return e.Err }

// Errors aggregates every failed cell of a sweep, in cell order. A
// sweep never aborts on the first failure: callers get results for all
// succeeding cells plus this error for the rest, so a CLI can render
// the partial table and report the failures at the end.
type Errors struct {
	Cells []CellError
	// Total is the sweep's grid size, for "N of M cells failed"
	// reporting.
	Total int
}

// Error implements error.
func (e *Errors) Error() string {
	if len(e.Cells) == 1 {
		return fmt.Sprintf("sweep: 1 of %d cells failed: %v", e.Total, e.Cells[0])
	}
	return fmt.Sprintf("sweep: %d of %d cells failed; first: %v", len(e.Cells), e.Total, e.Cells[0])
}

// Unwrap exposes the per-cell errors to errors.Is/As.
func (e *Errors) Unwrap() []error {
	out := make([]error, len(e.Cells))
	for i, c := range e.Cells {
		out[i] = c
	}
	return out
}

// Run executes every cell on a bounded worker pool and returns the
// results in cell order. results[i] is cell i's value, or the zero R if
// that cell failed; err is nil when every cell succeeded, otherwise an
// *Errors listing each failure in cell order. Telemetry attached via
// Options is merged deterministically: the output is byte-identical for
// any Parallel value.
func Run[R any](cells []Cell[R], opts Options) (results []R, err error) {
	workers := opts.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	results = make([]R, len(cells))
	cellErrs := make([]error, len(cells))
	m := newMerger(len(cells), opts.Metrics, opts.Trace, opts.Spans)

	runCell := func(i int) {
		seed := DeriveSeed(opts.RootSeed, cells[i].Labels...)
		// pprof labels attribute CPU-profile samples to grid cells, so
		// `go tool pprof -tagfocus` can isolate one cell's cost.
		pprof.Do(context.Background(), pprof.Labels("sweep_cell", strings.Join(cells[i].Labels, " ")), func(context.Context) {
			results[i], cellErrs[i] = runGuarded(cells[i], seed, m.provider(i, seed))
		})
		m.complete(i)
	}

	if workers <= 1 {
		for i := range cells {
			runCell(i)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					runCell(i)
				}
			}()
		}
		for i := range cells {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}

	var failed []CellError
	for i, cellErr := range cellErrs {
		if cellErr != nil {
			failed = append(failed, CellError{Index: i, Labels: cells[i].Labels, Err: cellErr})
		}
	}
	if len(failed) > 0 {
		return results, &Errors{Cells: failed, Total: len(cells)}
	}
	return results, nil
}

// runGuarded executes one cell, converting a panic into a cell error so
// a single broken cell cannot take down the whole sweep (or, under a
// worker pool, the whole process).
func runGuarded[R any](cell Cell[R], seed int64, prov telemetry.Provider) (out R, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	if cell.Run == nil {
		return out, errors.New("cell has no Run function")
	}
	return cell.Run(seed, prov)
}

// cellProvider is the telemetry.Provider handed to one cell.
type cellProvider struct {
	reg   *telemetry.Registry
	sink  telemetry.Sink
	spans *span.Tracer
}

func (p cellProvider) Metrics() *telemetry.Registry { return p.reg }
func (p cellProvider) TraceSink() telemetry.Sink    { return p.sink }
func (p cellProvider) Spans() *span.Tracer          { return p.spans }

// merger owns the per-cell telemetry buffers and flushes them into the
// sweep-level registry/sink in cell order. Flushing is incremental — a
// completed cell is flushed as soon as every earlier cell completed —
// so a serial sweep streams with one cell of buffering, and a parallel
// sweep holds at most the out-of-order window.
type merger struct {
	metrics *telemetry.Registry
	trace   telemetry.Sink
	spans   *span.Tracer

	regs  []*telemetry.Registry
	bufs  []*telemetry.Recorder
	cellS []*span.Tracer

	mu   sync.Mutex
	done []bool
	next int
}

func newMerger(n int, metrics *telemetry.Registry, trace telemetry.Sink, spans *span.Tracer) *merger {
	m := &merger{
		metrics: metrics,
		trace:   trace,
		spans:   spans,
		regs:    make([]*telemetry.Registry, n),
		bufs:    make([]*telemetry.Recorder, n),
		cellS:   make([]*span.Tracer, n),
		done:    make([]bool, n),
	}
	for i := 0; i < n; i++ {
		if metrics != nil {
			m.regs[i] = telemetry.NewRegistry()
		}
		if trace != nil {
			m.bufs[i] = telemetry.NewRecorder()
		}
		if spans != nil {
			m.cellS[i] = span.NewTracer(0) // re-seeded with the cell seed in provider(i, seed)
		}
	}
	return m
}

// provider returns cell i's telemetry provider. The per-cell buffers
// were allocated up front, so this is read-only and safe from any
// worker: slot i is only ever written by complete(i), which runs after
// the cell — and therefore after this call — finished.
func (m *merger) provider(i int, seed int64) telemetry.Provider {
	p := cellProvider{reg: m.regs[i]} //ndnlint:allow guardedby — slot i is immutable until complete(i) runs, sequenced after this read
	if m.bufs[i] != nil {             //ndnlint:allow guardedby — same per-slot ownership invariant
		p.sink = m.bufs[i] //ndnlint:allow guardedby — same per-slot ownership invariant
	}
	if m.cellS[i] != nil { //ndnlint:allow guardedby — same per-slot ownership invariant
		m.cellS[i].SetSeed(seed) //ndnlint:allow guardedby — same per-slot ownership invariant
		p.spans = m.cellS[i]     //ndnlint:allow guardedby — same per-slot ownership invariant
	}
	return p
}

// complete marks cell i finished and flushes the contiguous completed
// prefix into the sweep-level telemetry, preserving cell order.
func (m *merger) complete(i int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.done[i] = true
	for m.next < len(m.done) && m.done[m.next] {
		if m.regs[m.next] != nil {
			m.metrics.Merge(m.regs[m.next].Snapshot())
			m.regs[m.next] = nil
		}
		if m.bufs[m.next] != nil {
			for _, ev := range m.bufs[m.next].Events() {
				m.trace.Emit(ev)
			}
			m.bufs[m.next] = nil
		}
		if m.cellS[m.next] != nil {
			m.spans.Merge(m.cellS[m.next].Records())
			m.cellS[m.next] = nil
		}
		m.next++
	}
}

package sweep

import (
	"fmt"
	"testing"
)

func TestDeriveSeedDeterministic(t *testing.T) {
	a := DeriveSeed(42, "fig=5a", "algo=No Privacy", "size=2000")
	b := DeriveSeed(42, "fig=5a", "algo=No Privacy", "size=2000")
	if a != b {
		t.Fatalf("DeriveSeed not deterministic: %d vs %d", a, b)
	}
	if c := DeriveSeed(43, "fig=5a", "algo=No Privacy", "size=2000"); c == a {
		t.Fatal("different root seeds produced the same derived seed")
	}
}

func TestDeriveSeedLabelOrderMatters(t *testing.T) {
	a := DeriveSeed(7, "x=1", "y=2")
	b := DeriveSeed(7, "y=2", "x=1")
	if a == b {
		t.Fatal("label order should change the derived seed")
	}
}

func TestDeriveSeedLabelBoundaries(t *testing.T) {
	// The per-label separator must keep {"ab","c"} and {"a","bc"} (and a
	// single concatenated label) on distinct streams.
	seen := map[int64][]string{}
	for _, labels := range [][]string{{"ab", "c"}, {"a", "bc"}, {"abc"}, {"a", "b", "c"}} {
		s := DeriveSeed(1, labels...)
		if prev, dup := seen[s]; dup {
			t.Fatalf("labels %v and %v derive the same seed %d", prev, labels, s)
		}
		seen[s] = labels
	}
}

// TestOldAdditiveDerivationCollides documents the bug this package
// replaces: figure5.go derived per-cell seeds as
// Seed + size + int64(frac*1000), so distinct grid cells shared one
// RNG stream.
func TestOldAdditiveDerivationCollides(t *testing.T) {
	const root = int64(1)
	oldDerive := func(size int, frac float64) int64 { return root + int64(size) + int64(frac*1000) }
	// (size=64, 20% private) vs (size=164, 10% private): both 264.
	if oldDerive(64, 0.2) != oldDerive(164, 0.1) {
		t.Fatal("expected the historical derivation to collide for these cells")
	}
	a := DeriveSeed(root, "fig=5b", "frac=0.2", "size=64")
	b := DeriveSeed(root, "fig=5b", "frac=0.1", "size=164")
	if a == b {
		t.Fatalf("DeriveSeed reproduced the collision: %d", a)
	}
}

// TestDeriveSeedDistinctAcrossRealGrids replays every grid the
// experiment drivers actually sweep and asserts all derived seeds are
// pairwise distinct — the regression test for the seed-collision class
// of bugs.
func TestDeriveSeedDistinctAcrossRealGrids(t *testing.T) {
	const root = int64(1)
	var grids [][]string

	// Figure 5(a): algorithm × cache size.
	algos := []string{"No Privacy", "Exponential-Random-Cache", "Uniform-Random-Cache", "Always Delay Private Content"}
	sizes := []int{16, 62, 125, 250, 500, 1000, 0}
	for _, size := range sizes {
		for _, algo := range algos {
			grids = append(grids, []string{"fig=5a", "algo=" + algo, fmt.Sprintf("size=%d", size)})
		}
	}
	// Figure 5(b): private fraction × cache size.
	for _, frac := range []float64{0.05, 0.1, 0.2, 0.4} {
		for _, size := range sizes {
			grids = append(grids, []string{"fig=5b", fmt.Sprintf("frac=%g", frac), fmt.Sprintf("size=%d", size)})
		}
	}
	// Figure 3: scenario × run.
	for _, scenario := range []string{"lan", "wan", "producer", "local"} {
		for run := 0; run < 50; run++ {
			grids = append(grids, []string{"scenario=" + scenario, fmt.Sprintf("run=%d", run)})
		}
	}
	// Conversation detection: protection × trial × world.
	for _, protected := range []bool{false, true} {
		for trial := 0; trial < 10; trial++ {
			for _, conversing := range []bool{false, true} {
				grids = append(grids, []string{
					"fig=conversation",
					fmt.Sprintf("protected=%t", protected),
					fmt.Sprintf("trial=%d", trial),
					fmt.Sprintf("conversing=%t", conversing),
				})
			}
		}
	}
	// Correlation: set sizes; placement: policies; ablation: policy × size.
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		grids = append(grids, []string{"fig=correlation", fmt.Sprintf("n=%d", n)})
	}
	for _, policy := range []string{"none", "consumer-facing", "all"} {
		grids = append(grids, []string{"fig=placement", "policy=" + policy})
	}
	for _, policy := range []string{"lru", "fifo", "lfu"} {
		for _, size := range []int{500, 2500, 10000} {
			grids = append(grids, []string{"fig=ablation", "policy=" + policy, fmt.Sprintf("size=%d", size)})
		}
	}

	seen := make(map[int64][]string, len(grids))
	for _, labels := range grids {
		s := DeriveSeed(root, labels...)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between cells %v and %v (seed %d)", prev, labels, s)
		}
		seen[s] = labels
	}
	if len(seen) != len(grids) {
		t.Fatalf("expected %d distinct seeds, got %d", len(grids), len(seen))
	}
}

func TestSplitmix64KnownValues(t *testing.T) {
	// The first three outputs of the reference SplitMix64 generator
	// seeded with 0 (Vigna's splitmix64.c test vectors): guards against
	// silent edits to the mixing constants. splitmix64(state) here is
	// one increment-and-mix step, so feeding it states 0, γ, 2γ yields
	// the reference sequence.
	const gamma = 0x9E3779B97F4A7C15
	want := []uint64{0xE220A8397B1DCDAF, 0x6E789E6AA1B965F4, 0x06C45D188009454F}
	for i, w := range want {
		if got := splitmix64(uint64(i) * gamma); got != w {
			t.Fatalf("splitmix64 output %d = %#x, want %#x", i, got, w)
		}
	}
}

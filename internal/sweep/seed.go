// Package sweep is the experiment-grid trial engine: every figure in
// the paper is a sweep over a grid of independent cells (algorithm ×
// cache size, topology × run index, …), and this package runs those
// cells on a bounded worker pool while keeping the output byte-identical
// to a serial run. Three properties make that possible:
//
//  1. Seed streams. Each cell's RNG seed is derived from the root seed
//     and the cell's canonical labels with a SplitMix64-based mixer, so
//     distinct cells provably use distinct streams (the additive
//     seed+size+frac arithmetic it replaces collided) and a cell's
//     stream never depends on execution order.
//  2. Isolated telemetry. Each cell observes its own
//     telemetry.Registry and trace buffer; the engine merges them into
//     the caller's registry/sink in deterministic cell order.
//  3. In-order results. Results land at their cell's index regardless
//     of completion order, and per-cell failures are collected instead
//     of aborting the sweep.
package sweep

// splitmix64 is the SplitMix64 output function (Steele, Lea & Flood,
// "Fast Splittable Pseudorandom Number Generators", OOPSLA 2014): a
// bijective avalanche mixer whose increment constant is the golden
// ratio. It is the standard stream-splitter for seeding independent
// PRNGs from one root value.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// FNV-1a constants, used to fold label bytes into the seed stream.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// hashLabel folds one label into a 64-bit value with FNV-1a. The
// terminating separator byte keeps label boundaries significant, so
// {"ab","c"} and {"a","bc"} hash differently.
func hashLabel(label string) uint64 {
	h := fnvOffset
	for i := 0; i < len(label); i++ {
		h = (h ^ uint64(label[i])) * fnvPrime
	}
	return (h ^ 0xFF) * fnvPrime
}

// DeriveSeed maps (root seed, canonical cell labels) to the cell's RNG
// seed. The root seed is avalanched through SplitMix64 first, then each
// label is FNV-1a-hashed and mixed in with another SplitMix64 round, so
// every label byte influences every output bit. Two cells share a seed
// stream only if they share the root seed AND the exact label sequence
// — unlike the additive `seed + size + int64(frac*1000)` arithmetic
// this replaces, where e.g. (size=164, frac=10%) and (size=64,
// frac=20%) collided.
func DeriveSeed(root int64, labels ...string) int64 {
	h := splitmix64(uint64(root))
	for _, label := range labels {
		h = splitmix64(h ^ hashLabel(label))
	}
	return int64(h)
}

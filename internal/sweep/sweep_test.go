package sweep

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"

	"ndnprivacy/internal/telemetry"
)

func intCells(n int) []Cell[int] {
	cells := make([]Cell[int], n)
	for i := 0; i < n; i++ {
		i := i
		cells[i] = Cell[int]{
			Labels: []string{fmt.Sprintf("cell=%d", i)},
			Run: func(seed int64, _ telemetry.Provider) (int, error) {
				// Burn a few RNG draws so cells finish out of order
				// under a pool, then return a value tied to the index.
				rng := rand.New(rand.NewSource(seed))
				for k := 0; k < rng.Intn(100); k++ {
					_ = rng.Int63()
				}
				return i * i, nil
			},
		}
	}
	return cells
}

func TestRunPreservesCellOrder(t *testing.T) {
	for _, parallel := range []int{1, 2, 8} {
		results, err := Run(intCells(37), Options{RootSeed: 5, Parallel: parallel})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		for i, r := range results {
			if r != i*i {
				t.Fatalf("parallel=%d: results[%d] = %d, want %d", parallel, i, r, i*i)
			}
		}
	}
}

func TestRunCollectsErrorsWithoutAborting(t *testing.T) {
	cells := intCells(10)
	cells[3].Run = func(int64, telemetry.Provider) (int, error) { return 0, errors.New("boom-3") }
	cells[7].Run = func(int64, telemetry.Provider) (int, error) { return 0, errors.New("boom-7") }
	results, err := Run(cells, Options{RootSeed: 1, Parallel: 4})
	if err == nil {
		t.Fatal("expected an error")
	}
	var errs *Errors
	if !errors.As(err, &errs) {
		t.Fatalf("error is %T, want *Errors", err)
	}
	if len(errs.Cells) != 2 || errs.Total != 10 {
		t.Fatalf("got %d/%d failed cells, want 2/10", len(errs.Cells), errs.Total)
	}
	if errs.Cells[0].Index != 3 || errs.Cells[1].Index != 7 {
		t.Fatalf("failed indices = %d,%d, want 3,7", errs.Cells[0].Index, errs.Cells[1].Index)
	}
	if got := errs.Cells[0].Labels[0]; got != "cell=3" {
		t.Fatalf("failed cell labels = %q, want cell=3", got)
	}
	// Succeeding cells still returned their results.
	for _, i := range []int{0, 1, 2, 4, 5, 6, 8, 9} {
		if results[i] != i*i {
			t.Fatalf("results[%d] = %d, want %d", i, results[i], i*i)
		}
	}
	if !strings.Contains(err.Error(), "2 of 10") {
		t.Fatalf("error message %q does not summarize the failure count", err)
	}
}

func TestRunRecoversPanics(t *testing.T) {
	cells := intCells(4)
	cells[2].Run = func(int64, telemetry.Provider) (int, error) { panic("kaboom") }
	_, err := Run(cells, Options{Parallel: 2})
	var errs *Errors
	if !errors.As(err, &errs) {
		t.Fatalf("error is %T, want *Errors", err)
	}
	if len(errs.Cells) != 1 || errs.Cells[0].Index != 2 {
		t.Fatalf("unexpected failures: %v", errs)
	}
	if !strings.Contains(errs.Cells[0].Err.Error(), "kaboom") {
		t.Fatalf("panic message lost: %v", errs.Cells[0].Err)
	}
}

func TestRunNilRunFunc(t *testing.T) {
	_, err := Run([]Cell[int]{{Labels: []string{"empty"}}}, Options{})
	var errs *Errors
	if !errors.As(err, &errs) {
		t.Fatalf("error is %T, want *Errors", err)
	}
}

func TestRunDerivesDistinctSeedsPerCell(t *testing.T) {
	seeds := make([]int64, 8)
	cells := make([]Cell[int], 8)
	for i := range cells {
		i := i
		cells[i] = Cell[int]{
			Labels: []string{fmt.Sprintf("cell=%d", i)},
			Run: func(seed int64, _ telemetry.Provider) (int, error) {
				seeds[i] = seed
				return 0, nil
			},
		}
	}
	if _, err := Run(cells, Options{RootSeed: 9, Parallel: 1}); err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for i, s := range seeds {
		if s != DeriveSeed(9, cells[i].Labels...) {
			t.Fatalf("cell %d got seed %d, want DeriveSeed output", i, s)
		}
		if seen[s] {
			t.Fatalf("seed %d repeated", s)
		}
		seen[s] = true
	}
}

// telemetryCells emit one counter increment, one histogram sample, and
// two trace events per cell, keyed by index.
func telemetryCells(n int) []Cell[int] {
	cells := make([]Cell[int], n)
	for i := 0; i < n; i++ {
		i := i
		cells[i] = Cell[int]{
			Labels: []string{fmt.Sprintf("cell=%d", i)},
			Run: func(seed int64, prov telemetry.Provider) (int, error) {
				prov.Metrics().Counter("sweep_test_total").Inc()
				prov.Metrics().Counter(fmt.Sprintf("sweep_test_cell_%d", i)).Add(uint64(i))
				prov.Metrics().Histogram("sweep_test_hist", []float64{1, 10}).Observe(float64(i))
				telemetry.Emit(prov.TraceSink(), telemetry.Event{Type: telemetry.EvRunStart, Run: i})
				telemetry.Emit(prov.TraceSink(), telemetry.Event{Type: telemetry.EvCSInsert, Run: i})
				return i, nil
			},
		}
	}
	return cells
}

func TestTelemetryMergesDeterministically(t *testing.T) {
	const n = 13
	run := func(parallel int) (string, []telemetry.Event) {
		reg := telemetry.NewRegistry()
		rec := telemetry.NewRecorder()
		if _, err := Run(telemetryCells(n), Options{RootSeed: 3, Parallel: parallel, Metrics: reg, Trace: rec}); err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		var buf bytes.Buffer
		if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String(), rec.Events()
	}

	serialProm, serialEvents := run(1)
	if len(serialEvents) != 2*n {
		t.Fatalf("got %d trace events, want %d", len(serialEvents), 2*n)
	}
	for i, ev := range serialEvents {
		if ev.Run != i/2 {
			t.Fatalf("event %d carries run %d; trace not in cell order", i, ev.Run)
		}
	}
	for _, parallel := range []int{2, 8} {
		prom, events := run(parallel)
		if prom != serialProm {
			t.Fatalf("parallel=%d: merged metrics differ from serial run", parallel)
		}
		if len(events) != len(serialEvents) {
			t.Fatalf("parallel=%d: %d events, want %d", parallel, len(events), len(serialEvents))
		}
		for i := range events {
			if events[i] != serialEvents[i] {
				t.Fatalf("parallel=%d: event %d = %+v, want %+v", parallel, i, events[i], serialEvents[i])
			}
		}
	}
}

func TestTelemetryNilOptionsGiveNilProviders(t *testing.T) {
	cells := []Cell[int]{{
		Labels: []string{"only"},
		Run: func(_ int64, prov telemetry.Provider) (int, error) {
			if prov.Metrics() != nil {
				t.Error("expected nil metrics registry when Options.Metrics is nil")
			}
			if prov.TraceSink() != nil {
				t.Error("expected nil trace sink when Options.Trace is nil")
			}
			// Nil-safe telemetry must still absorb writes.
			prov.Metrics().Counter("x").Inc()
			telemetry.Emit(prov.TraceSink(), telemetry.Event{Type: telemetry.EvRunStart})
			return 1, nil
		},
	}}
	if _, err := Run(cells, Options{}); err != nil {
		t.Fatal(err)
	}
}

// TestWorkerPoolStress hammers the pool with many tiny cells; under
// `go test -race` (scripts/check.sh and CI) this doubles as the data-race
// check on the engine's result slices and merger.
func TestWorkerPoolStress(t *testing.T) {
	const n = 400
	var ran atomic.Int64
	reg := telemetry.NewRegistry()
	cells := make([]Cell[int], n)
	for i := 0; i < n; i++ {
		i := i
		cells[i] = Cell[int]{
			Labels: []string{fmt.Sprintf("cell=%d", i)},
			Run: func(seed int64, prov telemetry.Provider) (int, error) {
				ran.Add(1)
				prov.Metrics().Counter("stress_total").Inc()
				if i%97 == 0 {
					return 0, errors.New("expected failure")
				}
				return i, nil
			},
		}
	}
	results, err := Run(cells, Options{RootSeed: 11, Parallel: 16, Metrics: reg, Trace: telemetry.NewRecorder()})
	if ran.Load() != n {
		t.Fatalf("ran %d cells, want %d", ran.Load(), n)
	}
	var errs *Errors
	if !errors.As(err, &errs) {
		t.Fatalf("error is %T, want *Errors", err)
	}
	wantFail := 0
	for i := 0; i < n; i += 97 {
		wantFail++
	}
	if len(errs.Cells) != wantFail {
		t.Fatalf("%d failures, want %d", len(errs.Cells), wantFail)
	}
	if got := reg.Counter("stress_total").Value(); got != n {
		t.Fatalf("merged counter = %d, want %d", got, n)
	}
	for i, r := range results {
		if i%97 == 0 {
			continue
		}
		if r != i {
			t.Fatalf("results[%d] = %d", i, r)
		}
	}
}

func TestParallelCapping(t *testing.T) {
	// Parallel > len(cells) must not deadlock or leak workers; Parallel
	// < 0 falls back to GOMAXPROCS.
	for _, parallel := range []int{-1, 0, 64} {
		results, err := Run(intCells(3), Options{Parallel: parallel})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		if len(results) != 3 {
			t.Fatalf("parallel=%d: %d results", parallel, len(results))
		}
	}
}

func TestRunEmptyGrid(t *testing.T) {
	results, err := Run([]Cell[int]{}, Options{Parallel: 4})
	if err != nil || len(results) != 0 {
		t.Fatalf("empty grid: results=%v err=%v", results, err)
	}
}

package pcct

import (
	"testing"

	"ndnprivacy/internal/ndn"
)

// These tests pin the intrusive policies to the exact semantics of the
// string-keyed container/list policies they replaced: the store-level
// eviction tests in internal/cache and the differential property test
// both depend on victim selection being bit-identical.

func insertCS(tb *Table, uri string) *Entry {
	e := tb.Put(ndn.MustParseName(uri))
	tb.AttachCS(e, uri)
	return e
}

func evict(tb *Table) string {
	v := tb.CSVictim()
	if v == nil {
		return ""
	}
	uri := v.Name().Key()
	tb.DetachCS(v)
	tb.ReleaseIfEmpty(v)
	return uri
}

func TestLRUOrder(t *testing.T) {
	tb := New(PolicyLRU)
	insertCS(tb, "/a")
	insertCS(tb, "/b")
	insertCS(tb, "/c")
	tb.CSAccess(tb.Get(ndn.MustParseName("/a")))
	if v := tb.CSVictim(); v.Name().Key() != "/b" {
		t.Fatalf("victim = %s, want /b", v.Name().Key())
	}
	b := tb.Get(ndn.MustParseName("/b"))
	tb.DetachCS(b)
	tb.ReleaseIfEmpty(b)
	if v := tb.CSVictim(); v.Name().Key() != "/c" {
		t.Fatalf("victim after removing /b = %s, want /c", v.Name().Key())
	}
	if got := evict(tb); got != "/c" {
		t.Fatalf("evicted %s, want /c", got)
	}
	if got := evict(tb); got != "/a" {
		t.Fatalf("evicted %s, want /a", got)
	}
	if tb.CSVictim() != nil {
		t.Fatal("empty table reported a victim")
	}
}

func TestLRUReinsertMovesToFront(t *testing.T) {
	tb := New(PolicyLRU)
	a := insertCS(tb, "/a")
	insertCS(tb, "/b")
	tb.CSRefresh(a) // re-insert of existing content
	if v := tb.CSVictim(); v.Name().Key() != "/b" {
		t.Fatalf("victim = %s, want /b", v.Name().Key())
	}
}

func TestFIFOIgnoresAccess(t *testing.T) {
	tb := New(PolicyFIFO)
	a := insertCS(tb, "/a")
	insertCS(tb, "/b")
	tb.CSAccess(a)
	if v := tb.CSVictim(); v.Name().Key() != "/a" {
		t.Fatalf("victim = %s, want /a (FIFO ignores access)", v.Name().Key())
	}
}

func TestFIFOReinsertKeepsPosition(t *testing.T) {
	tb := New(PolicyFIFO)
	a := insertCS(tb, "/a")
	insertCS(tb, "/b")
	tb.CSRefresh(a)
	if v := tb.CSVictim(); v.Name().Key() != "/a" {
		t.Fatalf("victim = %s, want /a (FIFO re-insert keeps position)", v.Name().Key())
	}
	tb.DetachCS(a)
	tb.ReleaseIfEmpty(a)
	if v := tb.CSVictim(); v.Name().Key() != "/b" {
		t.Fatalf("victim = %s, want /b", v.Name().Key())
	}
}

func TestLFUEvictsLeastFrequent(t *testing.T) {
	tb := New(PolicyLFU)
	hot := insertCS(tb, "/hot")
	insertCS(tb, "/cold")
	tb.CSAccess(hot)
	tb.CSAccess(hot)
	if v := tb.CSVictim(); v.Name().Key() != "/cold" {
		t.Fatalf("victim = %s, want /cold", v.Name().Key())
	}
}

func TestLFUTieBreaksByLeastRecency(t *testing.T) {
	tb := New(PolicyLFU)
	insertCS(tb, "/first")
	insertCS(tb, "/second")
	// Same frequency: the earlier-touched entry is evicted first.
	if v := tb.CSVictim(); v.Name().Key() != "/first" {
		t.Fatalf("victim = %s, want /first", v.Name().Key())
	}
}

func TestLFURemoveCleansBuckets(t *testing.T) {
	tb := New(PolicyLFU)
	a := insertCS(tb, "/a")
	tb.CSAccess(a)
	tb.DetachCS(a)
	tb.ReleaseIfEmpty(a)
	if tb.CSVictim() != nil {
		t.Fatal("empty LFU reported a victim")
	}
	// The freed buckets must be reusable without corruption.
	insertCS(tb, "/b")
	b := tb.Get(ndn.MustParseName("/b"))
	tb.CSAccess(b)
	tb.CSAccess(b)
	insertCS(tb, "/c")
	if v := tb.CSVictim(); v.Name().Key() != "/c" {
		t.Fatalf("victim = %s, want /c", v.Name().Key())
	}
}

func TestLFUReinsertCountsAsAccess(t *testing.T) {
	tb := New(PolicyLFU)
	a := insertCS(tb, "/a")
	insertCS(tb, "/b")
	tb.CSRefresh(a) // refresh bumps frequency
	if v := tb.CSVictim(); v.Name().Key() != "/b" {
		t.Fatalf("victim = %s, want /b (re-insert counts as access)", v.Name().Key())
	}
}

func TestLFUBucketMigration(t *testing.T) {
	tb := New(PolicyLFU)
	a := insertCS(tb, "/a")
	b := insertCS(tb, "/b")
	c := insertCS(tb, "/c")
	// Drive distinct frequencies: a→3, b→2, c→1.
	tb.CSAccess(a)
	tb.CSAccess(a)
	tb.CSAccess(b)
	want := []string{"/c", "/b", "/a"}
	for _, w := range want {
		if got := evict(tb); got != w {
			t.Fatalf("eviction order: got %s, want %s", got, w)
		}
	}
	_ = c
}

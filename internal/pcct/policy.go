package pcct

// PolicyKind selects the CS facet's eviction policy. The policies are
// intrusive: LRU and FIFO thread one doubly-linked list through the
// entries' csPrev/csNext fields, and LFU adds pooled frequency buckets
// (the classic O(1) scheme, ties broken by least recency) — no
// container/list nodes, no per-operation allocation.
type PolicyKind uint8

// Eviction policies.
const (
	// PolicyLRU evicts the least-recently-used entry (the paper's
	// evaluation policy). Insert and access both move to front.
	PolicyLRU PolicyKind = iota
	// PolicyFIFO evicts in insertion order, ignoring accesses.
	PolicyFIFO
	// PolicyLFU evicts the least-frequently-used entry, breaking ties
	// by least recency within a frequency.
	PolicyLFU
)

// String names the policy as experiment output spells it.
func (k PolicyKind) String() string {
	switch k {
	case PolicyFIFO:
		return "fifo"
	case PolicyLFU:
		return "lfu"
	default:
		return "lru"
	}
}

// lfuBucket groups CS entries sharing one access frequency. Buckets
// form an ascending-frequency doubly-linked list; entries within a
// bucket form a recency list (head = most recent) threaded through
// csPrev/csNext.
type lfuBucket struct {
	freq       uint64
	head, tail int32 // entry list within the bucket
	prev, next int32 // bucket list, ascending frequency
}

// policyInsert notes a brand-new CS facet.
func (t *Table) policyInsert(e *Entry) {
	if t.kind == PolicyLFU {
		t.lfuInsert(e)
		return
	}
	t.listPushFront(e)
}

// CSRefresh notes a re-insert of existing content (payload refresh):
// LRU treats it as a touch, FIFO keeps the original position, LFU
// counts it as an access — exactly the semantics of the string-keyed
// policies this replaces.
func (t *Table) CSRefresh(e *Entry) {
	switch t.kind {
	case PolicyLRU:
		t.listMoveFront(e)
	case PolicyLFU:
		t.lfuAccess(e)
	}
}

// CSAccess notes a cache hit for recency/frequency purposes.
//
//ndnlint:hotpath — runs on every cache hit; must not allocate on the LRU path
func (t *Table) CSAccess(e *Entry) {
	switch t.kind {
	case PolicyLRU:
		t.listMoveFront(e)
	case PolicyLFU:
		t.lfuAccess(e)
	}
}

// policyRemove unlinks a CS facet from its policy structure.
func (t *Table) policyRemove(e *Entry) {
	if t.kind == PolicyLFU {
		t.lfuRemove(e)
		return
	}
	t.listUnlink(e)
}

// CSVictim returns the entry the policy would evict next, nil when no
// CS facet exists.
func (t *Table) CSVictim() *Entry {
	if t.kind == PolicyLFU {
		if t.lfuHead == nilID {
			return nil
		}
		return t.at(t.lfu[t.lfuHead].tail)
	}
	if t.csTail == nilID {
		return nil
	}
	return t.at(t.csTail)
}

// --- LRU/FIFO recency list ---

func (t *Table) listPushFront(e *Entry) {
	e.csPrev = nilID
	e.csNext = t.csHead
	if t.csHead != nilID {
		t.at(t.csHead).csPrev = e.id
	}
	t.csHead = e.id
	if t.csTail == nilID {
		t.csTail = e.id
	}
}

func (t *Table) listUnlink(e *Entry) {
	if e.csPrev != nilID {
		t.at(e.csPrev).csNext = e.csNext
	} else {
		t.csHead = e.csNext
	}
	if e.csNext != nilID {
		t.at(e.csNext).csPrev = e.csPrev
	} else {
		t.csTail = e.csPrev
	}
	e.csPrev, e.csNext = nilID, nilID
}

//ndnlint:hotpath — LRU touch on every cache hit; must not allocate
func (t *Table) listMoveFront(e *Entry) {
	if t.csHead == e.id {
		return
	}
	t.listUnlink(e)
	t.listPushFront(e)
}

// --- LFU frequency buckets ---

// lfuAllocBucket takes a bucket from the pool or extends it.
func (t *Table) lfuAllocBucket() int32 {
	if t.lfuFree != nilID {
		b := t.lfuFree
		t.lfuFree = t.lfu[b].next
		return b
	}
	t.lfu = append(t.lfu, lfuBucket{}) //ndnlint:allow alloccheck — bucket pool growth, amortized and reused
	return int32(len(t.lfu) - 1)
}

// lfuFreeBucket unlinks an empty bucket and returns it to the pool.
func (t *Table) lfuFreeBucket(b int32) {
	bk := &t.lfu[b]
	if bk.prev != nilID {
		t.lfu[bk.prev].next = bk.next
	} else {
		t.lfuHead = bk.next
	}
	if bk.next != nilID {
		t.lfu[bk.next].prev = bk.prev
	}
	bk.next = t.lfuFree
	t.lfuFree = b
}

// lfuPushFront places e at the recency front of bucket b.
func (t *Table) lfuPushFront(e *Entry, b int32) {
	bk := &t.lfu[b]
	e.lfuB = b
	e.csPrev = nilID
	e.csNext = bk.head
	if bk.head != nilID {
		t.at(bk.head).csPrev = e.id
	}
	bk.head = e.id
	if bk.tail == nilID {
		bk.tail = e.id
	}
}

// lfuUnlink removes e from its bucket's recency list, reporting whether
// the bucket is now empty.
func (t *Table) lfuUnlink(e *Entry) bool {
	bk := &t.lfu[e.lfuB]
	if e.csPrev != nilID {
		t.at(e.csPrev).csNext = e.csNext
	} else {
		bk.head = e.csNext
	}
	if e.csNext != nilID {
		t.at(e.csNext).csPrev = e.csPrev
	} else {
		bk.tail = e.csPrev
	}
	e.csPrev, e.csNext = nilID, nilID
	return bk.head == nilID
}

func (t *Table) lfuInsert(e *Entry) {
	// Frequency-1 bucket is the list head when it exists.
	b := t.lfuHead
	if b == nilID || t.lfu[b].freq != 1 {
		nb := t.lfuAllocBucket()
		t.lfu[nb] = lfuBucket{freq: 1, head: nilID, tail: nilID, prev: nilID, next: t.lfuHead}
		if t.lfuHead != nilID {
			t.lfu[t.lfuHead].prev = nb
		}
		t.lfuHead = nb
		b = nb
	}
	t.lfuPushFront(e, b)
}

func (t *Table) lfuAccess(e *Entry) {
	b := e.lfuB
	nextFreq := t.lfu[b].freq + 1
	nb := t.lfu[b].next
	if nb == nilID || t.lfu[nb].freq != nextFreq {
		// Insert a new bucket after b. Allocate first: the pool append
		// may move the bucket arena, so re-read b's fields after.
		fresh := t.lfuAllocBucket()
		after := t.lfu[b].next
		t.lfu[fresh] = lfuBucket{freq: nextFreq, head: nilID, tail: nilID, prev: b, next: after}
		if after != nilID {
			t.lfu[after].prev = fresh
		}
		t.lfu[b].next = fresh
		nb = fresh
	}
	empty := t.lfuUnlink(e)
	t.lfuPushFront(e, nb)
	if empty {
		t.lfuFreeBucket(b)
	}
}

func (t *Table) lfuRemove(e *Entry) {
	b := e.lfuB
	if t.lfuUnlink(e) {
		t.lfuFreeBucket(b)
	}
	e.lfuB = nilID
}

package pcct

import (
	"fmt"
	"testing"

	"ndnprivacy/internal/ndn"
)

// These tests cross-validate the static //ndnlint:hotpath verdicts with
// the runtime allocator: the composite table's probe paths and its
// steady-state churn must not allocate.

func TestLookupPathsZeroAlloc(t *testing.T) {
	tb := New(PolicyLRU)
	names := make([]ndn.Name, 64)
	for i := range names {
		names[i] = ndn.MustParseName(fmt.Sprintf("/alloc/%d", i))
		tb.Put(names[i])
	}
	hot := names[7]
	wire := ndn.EncodeInterest(ndn.NewInterest(hot, 1))
	v, err := ndn.InterestNameView(wire)
	if err != nil {
		t.Fatal(err)
	}
	tok := tb.TokenOf(tb.Get(hot))
	if n := testing.AllocsPerRun(200, func() {
		if tb.Get(hot) == nil {
			t.Fatal("Get missed")
		}
		if tb.GetView(&v) == nil {
			t.Fatal("GetView missed")
		}
		if tb.ByToken(tok) == nil {
			t.Fatal("ByToken missed")
		}
		p := tb.Probe(hot)
		if p.Entry == nil {
			t.Fatal("Probe missed")
		}
	}); n != 0 {
		t.Errorf("lookup paths: %.0f allocs/run, want 0", n)
	}
}

func TestChurnZeroAllocSteadyState(t *testing.T) {
	tb := New(PolicyLRU)
	names := make([]ndn.Name, 32)
	for i := range names {
		names[i] = ndn.MustParseName(fmt.Sprintf("/churn/%d", i))
	}
	// Warm the arena, the bucket array and the prefix index.
	for i := range names {
		e := tb.Put(names[i])
		tb.AttachCS(e, i)
	}
	for i := range names {
		e := tb.Get(names[i])
		tb.DetachCS(e)
		tb.ReleaseIfEmpty(e)
	}
	i := 0
	if n := testing.AllocsPerRun(200, func() {
		nm := names[i%len(names)]
		i++
		e := tb.Put(nm)
		tb.AttachCS(e, i)
		tb.CSAccess(e)
		v := tb.CSVictim()
		tb.DetachCS(v)
		tb.ReleaseIfEmpty(v)
	}); n != 0 {
		t.Errorf("steady-state CS churn: %.0f allocs/run, want 0", n)
	}
}

func TestPITFacetZeroAllocSteadyState(t *testing.T) {
	tb := New(PolicyLRU)
	nm := ndn.MustParseName("/pit/alloc")
	// First cycle allocates the facet slices and the length counters.
	e := tb.Put(nm)
	pf := tb.AttachPIT(e)
	pf.Faces = append(pf.Faces, FaceRec{Face: 1})
	pf.Nonces = append(pf.Nonces, 1)
	tb.DetachPIT(e)
	tb.ReleaseIfEmpty(e)
	if n := testing.AllocsPerRun(200, func() {
		e := tb.Put(nm)
		pf := tb.AttachPIT(e)
		pf.Faces = append(pf.Faces, FaceRec{Face: 1, Token: 2})
		pf.Nonces = append(pf.Nonces, 42)
		tb.DetachPIT(e)
		tb.ReleaseIfEmpty(e)
	}); n != 0 {
		t.Errorf("steady-state PIT facet cycle: %.0f allocs/run, want 0", n)
	}
}

// Package pcct implements the PIT-CS composite table: a single
// open-addressing hash table, keyed by the rolling-FNV name hashes the
// zero-copy NameView layer precomputes, whose entries carry two
// independent facets — a Content Store facet (payload + intrusive
// eviction-policy links + a sorted prefix-index slot) and a PIT facet
// (downstream faces, nonces, expiry). The design follows ndn-dpdk's
// PCCT (csrc/pcct): one hash probe per arriving interest resolves
// CS-check, PIT-aggregate and PIT-insert, and a Data packet can carry a
// direct entry token back instead of re-probing.
//
// Entries live in a chunked arena with a free list, so steady-state
// insert/remove churn allocates nothing and entry pointers stay stable
// across growth. Tokens are (generation, arena id) pairs: a recycled
// entry bumps its generation, so stale tokens are detected instead of
// resolving to the wrong name.
//
// Nothing in this package iterates a Go map — bucket probing, the
// policy lists and the sorted prefix index are all slice-backed — so
// every enumeration order is a pure function of the operation history,
// which is what the simulator's byte-identity determinism tests demand.
//
// The table is not safe for concurrent use; each simulated node runs
// single-threaded on its executor.
package pcct

import (
	"time"

	"ndnprivacy/internal/ndn"
)

const (
	chunkShift = 8
	chunkSize  = 1 << chunkShift
	chunkMask  = chunkSize - 1
	// nilID terminates intrusive lists and marks empty bucket slots.
	nilID = int32(-1)
	// minBuckets is the initial bucket-array size (power of two).
	minBuckets = 64
)

// FaceRec records one downstream face awaiting content, together with
// the PIT token that face's node attached to its interest (zero when
// the face is an application or a node without token support).
type FaceRec struct {
	Face  int64
	Token uint64
}

// PITFacet is the pending-interest side of a composite entry. Slices
// are retained (length-reset) across entry lifecycles, so steady-state
// PIT churn reuses their backing arrays instead of reallocating.
type PITFacet struct {
	// Active reports whether the facet is live; an entry can exist with
	// only a CS facet.
	Active bool
	// Expires and Created are virtual times: when the entry lapses and
	// when the entry-creating interest arrived.
	Expires time.Duration
	Created time.Duration
	// Privacy records whether the entry-creating interest carried the
	// consumer privacy bit.
	Privacy bool
	// Trace and Span carry the entry-creating interest's span context.
	Trace uint64
	Span  uint64
	// Faces are the downstream faces awaiting the content, with their
	// tokens; Nonces deduplicate looped or retransmitted interests.
	Faces  []FaceRec
	Nonces []uint64
}

// Entry is one composite-table entry: a unique name plus up to two
// facets. Fields are managed through Table methods so the policy lists,
// the prefix index and the facet counts stay consistent.
type Entry struct {
	hash uint64
	name ndn.Name
	id   int32
	gen  uint32
	live bool

	// CS facet: payload plus intrusive policy-list links. csNext doubles
	// as the free-list link while the entry is released.
	csData         any
	csPrev, csNext int32
	// lfuB is the owning LFU frequency bucket, nilID outside LFU mode.
	lfuB int32

	pit PITFacet
}

// Name returns the entry's name.
func (e *Entry) Name() ndn.Name { return e.name }

// Hash returns the entry's precomputed rolling name hash.
func (e *Entry) Hash() uint64 { return e.hash }

// CS returns the Content Store payload, nil when the CS facet is
// absent.
//
//ndnlint:hotpath — facet check on every lookup; must not allocate
func (e *Entry) CS() any { return e.csData }

// PITActive reports whether the PIT facet is live.
//
//ndnlint:hotpath — facet check on every lookup; must not allocate
func (e *Entry) PITActive() bool { return e.pit.Active }

// PIT returns the PIT facet for in-place mutation. Callers must have
// attached it via AttachPIT.
func (e *Entry) PIT() *PITFacet { return &e.pit }

// Table is the composite table. See the package comment for the
// design; one Table may serve a Content Store, a PIT, or both at once
// (the fused forwarder fast path).
type Table struct {
	buckets []int32
	mask    uint32
	used    int
	// mut counts structural mutations (insert/release/grow); a Probe
	// taken at one mut value is only trusted while mut is unchanged.
	mut uint64

	chunks [][]Entry
	next   int32
	free   int32

	kind PolicyKind
	// csHead/csTail anchor the LRU/FIFO recency list (front = most
	// recent / newest).
	csHead, csTail int32
	// lfu is the frequency-bucket arena for the LFU policy; lfuHead is
	// the lowest-frequency bucket.
	lfu     []lfuBucket
	lfuFree int32
	lfuHead int32

	// csOrder holds the ids of all CS-faceted entries sorted by
	// ndn.Name.Compare — the compact prefix index replacing the
	// map-based name trie. Binary search finds any prefix range.
	csOrder []int32

	nCS, nPIT int
	// pitLens[k] counts active PIT facets whose name has k components,
	// so Data satisfaction can skip prefix lengths with no pending
	// entries without probing.
	pitLens []int32
}

// New returns an empty table whose CS facet uses the given eviction
// policy.
func New(kind PolicyKind) *Table {
	t := &Table{
		buckets: make([]int32, minBuckets),
		mask:    minBuckets - 1,
		free:    nilID,
		kind:    kind,
		csHead:  nilID,
		csTail:  nilID,
		lfuFree: nilID,
		lfuHead: nilID,
	}
	for i := range t.buckets {
		t.buckets[i] = nilID
	}
	return t
}

// Len returns the number of live entries (composite entries count
// once).
func (t *Table) Len() int { return t.used }

// LenCS returns the number of entries with a CS facet.
func (t *Table) LenCS() int { return t.nCS }

// LenPIT returns the number of entries with an active PIT facet.
func (t *Table) LenPIT() int { return t.nPIT }

// at returns the arena entry for id.
//
//ndnlint:hotpath — arena indexing under every probe; must not allocate
func (t *Table) at(id int32) *Entry {
	return &t.chunks[id>>chunkShift][id&chunkMask]
}

// Get returns the live entry for exactly name, or nil. The precomputed
// name hash selects the probe start; membership is verified by full
// name comparison.
//
//ndnlint:hotpath — the one probe per arriving interest; must not allocate
func (t *Table) Get(name ndn.Name) *Entry {
	h := name.Hash()
	i := uint32(h) & t.mask
	for {
		id := t.buckets[i]
		if id == nilID {
			return nil
		}
		e := t.at(id)
		if e.hash == h && e.name.Equal(name) {
			return e
		}
		i = (i + 1) & t.mask
	}
}

// GetView is Get for a zero-copy name view: the wire-facing probe,
// taken without materializing an owned name.
//
//ndnlint:hotpath — wire probe; must not allocate
func (t *Table) GetView(v *ndn.NameView) *Entry {
	h := v.Hash()
	i := uint32(h) & t.mask
	for {
		id := t.buckets[i]
		if id == nilID {
			return nil
		}
		e := t.at(id)
		if e.hash == h && v.EqualName(e.name) {
			return e
		}
		i = (i + 1) & t.mask
	}
}

// GetPrefix returns the live entry whose name is exactly the first k
// components of "of", given that prefix's rolling hash h (see
// ndn.MixComponentHash), or nil. This is the PIT longest-prefix probe:
// no prefix name is ever materialized.
//
//ndnlint:hotpath — per-prefix probe on every Data arrival; must not allocate
func (t *Table) GetPrefix(h uint64, k int, of ndn.Name) *Entry {
	i := uint32(h) & t.mask
	for {
		id := t.buckets[i]
		if id == nilID {
			return nil
		}
		e := t.at(id)
		if e.hash == h && e.name.Len() == k && e.name.IsPrefixOf(of) {
			return e
		}
		i = (i + 1) & t.mask
	}
}

// Probe records the result of one hash probe: the entry if found, and
// otherwise the bucket slot where that name would be inserted. The slot
// is trusted only while the table's mutation counter is unchanged —
// PutProbed re-probes when it isn't.
type Probe struct {
	// Entry is the found entry, nil on a miss.
	Entry *Entry
	hash  uint64
	slot  uint32
	mut   uint64
}

// Probe looks up name and captures the probe position, so a subsequent
// PutProbed needs no second hash probe. This is the fused-path
// primitive: the forwarder probes once per arriving interest and
// resolves CS-check, PIT-aggregate and PIT-insert from the result.
//
//ndnlint:hotpath — the one probe per arriving interest; must not allocate
func (t *Table) Probe(name ndn.Name) Probe {
	h := name.Hash()
	i := uint32(h) & t.mask
	for {
		id := t.buckets[i]
		if id == nilID {
			return Probe{hash: h, slot: i, mut: t.mut}
		}
		e := t.at(id)
		if e.hash == h && e.name.Equal(name) {
			return Probe{Entry: e, hash: h, slot: i, mut: t.mut}
		}
		i = (i + 1) & t.mask
	}
}

// Valid reports whether the probe may still be used against t without
// re-probing.
func (p *Probe) Valid(t *Table) bool { return p.mut == t.mut }

// Put returns the entry for name, creating a facet-less entry if none
// exists.
func (t *Table) Put(name ndn.Name) *Entry {
	p := t.Probe(name)
	return t.PutProbed(&p, name)
}

// PutProbed is Put reusing an earlier probe: when the table is
// unchanged since the probe, a hit costs nothing and a miss inserts at
// the remembered slot without a second probe. The probe is updated to
// stay valid for the caller's next step.
func (t *Table) PutProbed(p *Probe, name ndn.Name) *Entry {
	if p.mut != t.mut {
		*p = t.Probe(name)
	}
	if p.Entry != nil {
		return p.Entry
	}
	if (t.used+1)*4 > len(t.buckets)*3 {
		t.grow()
		*p = t.Probe(name)
	}
	id, e := t.alloc(p.hash, name)
	t.buckets[p.slot] = id
	t.used++
	t.mut++
	p.Entry = e
	p.mut = t.mut
	return e
}

// alloc takes an entry from the free list or extends the arena by one
// chunk. Chunked storage keeps entry pointers stable forever.
func (t *Table) alloc(h uint64, name ndn.Name) (int32, *Entry) {
	var id int32
	if t.free != nilID {
		id = t.free
		t.free = t.at(id).csNext
	} else {
		if int(t.next) == len(t.chunks)*chunkSize {
			t.chunks = append(t.chunks, make([]Entry, chunkSize))
		}
		id = t.next
		t.next++
	}
	e := t.at(id)
	e.id = id
	e.hash = h
	e.name = name
	e.live = true
	e.csData = nil
	e.csPrev, e.csNext, e.lfuB = nilID, nilID, nilID
	return id, e
}

// ReleaseIfEmpty frees the entry once both facets are detached; an
// entry still carrying a facet is left alone. Freed entries keep their
// PIT slices for reuse and bump their generation so outstanding tokens
// die.
func (t *Table) ReleaseIfEmpty(e *Entry) {
	if !e.live || e.csData != nil || e.pit.Active {
		return
	}
	t.eraseSlotOf(e)
	e.live = false
	e.gen++
	e.name = ndn.Name{}
	e.csNext = t.free
	t.free = e.id
	t.used--
	t.mut++
}

// eraseSlotOf removes e's bucket slot using backward-shift deletion, so
// probe chains stay unbroken without tombstones.
func (t *Table) eraseSlotOf(e *Entry) {
	mask := t.mask
	i := uint32(e.hash) & mask
	for t.buckets[i] != e.id {
		i = (i + 1) & mask
	}
	j := i
	for {
		t.buckets[i] = nilID
		for {
			j = (j + 1) & mask
			id := t.buckets[j]
			if id == nilID {
				return
			}
			home := uint32(t.at(id).hash) & mask
			// Keep the entry at j when its home slot lies cyclically in
			// (i, j] — its probe chain does not cross the hole at i.
			if i <= j {
				if i < home && home <= j {
					continue
				}
			} else if home > i || home <= j {
				continue
			}
			t.buckets[i] = id
			break
		}
		i = j
	}
}

// grow doubles the bucket array and rehashes every live entry. Entry
// storage (the arena) is untouched, so pointers and tokens survive.
func (t *Table) grow() {
	old := t.buckets
	t.buckets = make([]int32, len(old)*2)
	t.mask = uint32(len(t.buckets) - 1)
	for i := range t.buckets {
		t.buckets[i] = nilID
	}
	for _, id := range old {
		if id == nilID {
			continue
		}
		i := uint32(t.at(id).hash) & t.mask
		for t.buckets[i] != nilID {
			i = (i + 1) & t.mask
		}
		t.buckets[i] = id
	}
	t.mut++
}

// TokenOf returns the entry's direct-access token: nonzero, unique for
// the entry's current lifetime, and detectably stale after the entry is
// released.
func (t *Table) TokenOf(e *Entry) uint64 {
	return uint64(e.gen)<<32 | uint64(uint32(e.id)+1)
}

// ByToken resolves a token to its live entry, or nil when the token is
// zero, malformed, or from a previous lifetime of the slot.
//
//ndnlint:hotpath — token-carrying Data fast path; must not allocate
func (t *Table) ByToken(tok uint64) *Entry {
	if tok == 0 {
		return nil
	}
	idx := uint32(tok) - 1
	if int32(idx) < 0 || int32(idx) >= t.next {
		return nil
	}
	e := t.at(int32(idx))
	if !e.live || e.gen != uint32(tok>>32) {
		return nil
	}
	return e
}

// AttachCS installs the CS facet: payload, policy-list membership and a
// prefix-index slot. The entry must not already carry a CS facet.
func (t *Table) AttachCS(e *Entry, payload any) {
	e.csData = payload
	t.nCS++
	t.orderInsert(e)
	t.policyInsert(e)
}

// DetachCS removes the CS facet; the entry itself survives (it may
// still carry a PIT facet — call ReleaseIfEmpty after).
func (t *Table) DetachCS(e *Entry) {
	if e.csData == nil {
		return
	}
	t.policyRemove(e)
	t.orderRemove(e)
	e.csData = nil
	t.nCS--
}

// AttachPIT installs the PIT facet and returns it for field
// initialization. Face and nonce slices arrive length-reset but keep
// their backing arrays from the slot's previous lifetime.
func (t *Table) AttachPIT(e *Entry) *PITFacet {
	pf := &e.pit
	pf.Active = true
	pf.Faces = pf.Faces[:0]
	pf.Nonces = pf.Nonces[:0]
	k := e.name.Len()
	for len(t.pitLens) <= k {
		t.pitLens = append(t.pitLens, 0) //ndnlint:allow alloccheck — grows once per new max name depth
	}
	t.pitLens[k]++
	t.nPIT++
	return pf
}

// DetachPIT removes the PIT facet; the entry itself survives (call
// ReleaseIfEmpty after).
func (t *Table) DetachPIT(e *Entry) {
	if !e.pit.Active {
		return
	}
	e.pit.Active = false
	e.pit.Faces = e.pit.Faces[:0]
	e.pit.Nonces = e.pit.Nonces[:0]
	e.pit.Trace, e.pit.Span = 0, 0
	t.pitLens[e.name.Len()]--
	t.nPIT--
}

// PITLenAt reports how many active PIT facets have names of exactly k
// components. Data satisfaction skips prefix lengths reporting zero
// without probing the table.
//
//ndnlint:hotpath — consulted per prefix length on every Data arrival
func (t *Table) PITLenAt(k int) int {
	if k >= len(t.pitLens) {
		return 0
	}
	return int(t.pitLens[k])
}

// ForEachPIT visits every active PIT facet in arena order. Arena order
// is a pure function of the operation history (no map iteration), but
// callers wanting name order must sort.
func (t *Table) ForEachPIT(fn func(*Entry)) {
	for id := int32(0); id < t.next; id++ {
		e := t.at(id)
		if e.live && e.pit.Active {
			fn(e)
		}
	}
}

// CSIndexLen returns the prefix-index length (== LenCS).
func (t *Table) CSIndexLen() int { return len(t.csOrder) }

// CSIndex returns the i-th CS-faceted entry in sorted name order.
//
//ndnlint:hotpath — prefix-range scan step in Match; must not allocate
func (t *Table) CSIndex(i int) *Entry { return t.at(t.csOrder[i]) }

// CSLowerBound returns the first prefix-index position whose name
// compares >= prefix. Every name under the prefix forms a contiguous
// run starting there (component-wise order sorts a prefix immediately
// before its extensions).
//
//ndnlint:hotpath — prefix-range entry point in Match; must not allocate
func (t *Table) CSLowerBound(prefix ndn.Name) int {
	lo, hi := 0, len(t.csOrder)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.at(t.csOrder[mid]).name.Compare(prefix) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// orderInsert places e into the sorted prefix index.
func (t *Table) orderInsert(e *Entry) {
	i := t.CSLowerBound(e.name)
	t.csOrder = append(t.csOrder, 0) //ndnlint:allow alloccheck — amortized index growth, backing array reused across churn
	copy(t.csOrder[i+1:], t.csOrder[i:])
	t.csOrder[i] = e.id
}

// orderRemove deletes e's prefix-index slot.
func (t *Table) orderRemove(e *Entry) {
	i := t.CSLowerBound(e.name)
	// The lower bound lands on the first equal name; names are unique,
	// so csOrder[i] is e.
	copy(t.csOrder[i:], t.csOrder[i+1:])
	t.csOrder = t.csOrder[:len(t.csOrder)-1]
}

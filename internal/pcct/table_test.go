package pcct

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"ndnprivacy/internal/ndn"
)

func name(s string) ndn.Name { return ndn.MustParseName(s) }

func TestPutGetRelease(t *testing.T) {
	tb := New(PolicyLRU)
	a := tb.Put(name("/a/b"))
	if a == nil || tb.Len() != 1 {
		t.Fatalf("Put: entry=%v len=%d", a, tb.Len())
	}
	if tb.Put(name("/a/b")) != a {
		t.Fatal("second Put returned a different entry")
	}
	if got := tb.Get(name("/a/b")); got != a {
		t.Fatalf("Get = %v, want %v", got, a)
	}
	if tb.Get(name("/a/c")) != nil {
		t.Fatal("Get of absent name returned an entry")
	}
	tb.ReleaseIfEmpty(a)
	if tb.Len() != 0 || tb.Get(name("/a/b")) != nil {
		t.Fatal("released entry still visible")
	}
}

func TestReleaseKeepsFacetedEntries(t *testing.T) {
	tb := New(PolicyLRU)
	e := tb.Put(name("/x"))
	tb.AttachCS(e, "payload")
	tb.ReleaseIfEmpty(e)
	if tb.Get(name("/x")) != e {
		t.Fatal("entry with CS facet was released")
	}
	tb.DetachCS(e)
	tb.AttachPIT(e)
	tb.ReleaseIfEmpty(e)
	if tb.Get(name("/x")) != e {
		t.Fatal("entry with PIT facet was released")
	}
	tb.DetachPIT(e)
	tb.ReleaseIfEmpty(e)
	if tb.Get(name("/x")) != nil {
		t.Fatal("empty entry survived release")
	}
}

func TestGetView(t *testing.T) {
	tb := New(PolicyLRU)
	n := name("/view/probe/x")
	e := tb.Put(n)
	wire := ndn.EncodeInterest(ndn.NewInterest(n, 1))
	v, err := ndn.InterestNameView(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got := tb.GetView(&v); got != e {
		t.Fatalf("GetView = %v, want %v", got, e)
	}
	missWire := ndn.EncodeInterest(ndn.NewInterest(name("/view/probe/y"), 2))
	mv, err := ndn.InterestNameView(missWire)
	if err != nil {
		t.Fatal(err)
	}
	if tb.GetView(&mv) != nil {
		t.Fatal("GetView of absent name returned an entry")
	}
}

func TestGetPrefixRollingHash(t *testing.T) {
	tb := New(PolicyLRU)
	full := name("/a/b/c/d")
	short := tb.Put(name("/a/b"))
	exact := tb.Put(full)
	h := ndn.NameHashSeed()
	var hits []*Entry
	for k := 0; ; k++ {
		if e := tb.GetPrefix(h, k, full); e != nil {
			hits = append(hits, e)
		}
		if k == full.Len() {
			break
		}
		h = ndn.MixComponentHash(h, full.ComponentRef(k))
	}
	if len(hits) != 2 || hits[0] != short || hits[1] != exact {
		t.Fatalf("prefix sweep found %d entries, want [/a/b, /a/b/c/d]", len(hits))
	}
}

func TestTokenLifecycle(t *testing.T) {
	tb := New(PolicyLRU)
	e := tb.Put(name("/tok"))
	tok := tb.TokenOf(e)
	if tok == 0 {
		t.Fatal("token must be nonzero")
	}
	if tb.ByToken(tok) != e {
		t.Fatal("token did not resolve to its entry")
	}
	if tb.ByToken(0) != nil || tb.ByToken(tok+1<<32) != nil {
		t.Fatal("invalid token resolved")
	}
	tb.ReleaseIfEmpty(e)
	if tb.ByToken(tok) != nil {
		t.Fatal("stale token resolved after release")
	}
	// Recycle the slot under a different name: the old token must stay
	// dead and the new token must resolve.
	e2 := tb.Put(name("/tok2"))
	if tb.ByToken(tok) != nil {
		t.Fatal("stale token resolved against recycled slot")
	}
	if tb.ByToken(tb.TokenOf(e2)) != e2 {
		t.Fatal("fresh token did not resolve")
	}
}

func TestProbeInsertReuse(t *testing.T) {
	tb := New(PolicyLRU)
	n := name("/probe/x")
	p := tb.Probe(n)
	if p.Entry != nil {
		t.Fatal("probe of empty table found an entry")
	}
	e := tb.PutProbed(&p, n)
	if e == nil || tb.Get(n) != e {
		t.Fatal("PutProbed did not insert")
	}
	if !p.Valid(tb) || p.Entry != e {
		t.Fatal("probe not updated after insert")
	}
	// A mutated table invalidates the probe; PutProbed must re-probe
	// rather than clobber a bucket.
	p2 := tb.Probe(name("/probe/y"))
	tb.Put(name("/probe/z"))
	if p2.Valid(tb) {
		t.Fatal("probe still valid after mutation")
	}
	e2 := tb.PutProbed(&p2, name("/probe/y"))
	if tb.Get(name("/probe/y")) != e2 || tb.Get(name("/probe/z")) == nil || tb.Get(n) != e {
		t.Fatal("stale-probe insert corrupted the table")
	}
}

// TestChurnAgainstMap drives random insert/lookup/delete against a map
// reference, crossing several growth and backward-shift boundaries.
func TestChurnAgainstMap(t *testing.T) {
	tb := New(PolicyLRU)
	ref := make(map[string]*Entry)
	rng := rand.New(rand.NewSource(7))
	names := make([]ndn.Name, 300)
	for i := range names {
		names[i] = name(fmt.Sprintf("/churn/%d/%d", i%17, i))
	}
	for op := 0; op < 20000; op++ {
		n := names[rng.Intn(len(names))]
		switch rng.Intn(3) {
		case 0:
			e := tb.Put(n)
			if prev, ok := ref[n.Key()]; ok && prev != e {
				t.Fatalf("op %d: Put(%s) returned a different entry", op, n)
			}
			ref[n.Key()] = e
		case 1:
			e := tb.Get(n)
			want := ref[n.Key()]
			if e != want {
				t.Fatalf("op %d: Get(%s) = %v, want %v", op, n, e, want)
			}
		case 2:
			if e, ok := ref[n.Key()]; ok {
				tb.ReleaseIfEmpty(e)
				delete(ref, n.Key())
			}
		}
		if tb.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", op, tb.Len(), len(ref))
		}
	}
	for k, e := range ref {
		if got := tb.Get(e.Name()); got != e {
			t.Fatalf("final: Get(%s) = %v, want %v", k, got, e)
		}
	}
}

func csNames(tb *Table) []string {
	out := make([]string, 0, tb.CSIndexLen())
	for i := 0; i < tb.CSIndexLen(); i++ {
		out = append(out, tb.CSIndex(i).Name().Key())
	}
	return out
}

func TestPrefixIndexSortedAndRanged(t *testing.T) {
	tb := New(PolicyLRU)
	uris := []string{"/b/x", "/a", "/a/c/z", "/a/b", "/c", "/a/b/d", "/a/b/c"}
	for _, u := range uris {
		e := tb.Put(name(u))
		tb.AttachCS(e, u)
	}
	got := csNames(tb)
	want := append([]string(nil), uris...)
	sort.Strings(want) // URI order == component order for these names
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("index order %v, want %v", got, want)
		}
	}
	// Range scan under /a/b must yield exactly /a/b, /a/b/c, /a/b/d.
	prefix := name("/a/b")
	var under []string
	for i := tb.CSLowerBound(prefix); i < tb.CSIndexLen(); i++ {
		e := tb.CSIndex(i)
		if !prefix.IsPrefixOf(e.Name()) {
			break
		}
		under = append(under, e.Name().Key())
	}
	wantUnder := []string{"/a/b", "/a/b/c", "/a/b/d"}
	if len(under) != len(wantUnder) {
		t.Fatalf("under(/a/b) = %v, want %v", under, wantUnder)
	}
	for i := range wantUnder {
		if under[i] != wantUnder[i] {
			t.Fatalf("under(/a/b) = %v, want %v", under, wantUnder)
		}
	}
	// Removal keeps the index sorted and closed.
	mid := tb.Get(name("/a/b/c"))
	tb.DetachCS(mid)
	tb.ReleaseIfEmpty(mid)
	got = csNames(tb)
	if len(got) != len(uris)-1 {
		t.Fatalf("after removal index holds %d names", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("index out of order after removal: %v", got)
		}
	}
}

func TestPITFacetCounts(t *testing.T) {
	tb := New(PolicyLRU)
	a := tb.Put(name("/p"))
	b := tb.Put(name("/p/q/r"))
	tb.AttachPIT(a)
	tb.AttachPIT(b)
	if tb.LenPIT() != 2 || tb.PITLenAt(1) != 1 || tb.PITLenAt(3) != 1 || tb.PITLenAt(2) != 0 {
		t.Fatalf("pit length counts wrong: len=%d at1=%d at3=%d", tb.LenPIT(), tb.PITLenAt(1), tb.PITLenAt(3))
	}
	if tb.PITLenAt(99) != 0 {
		t.Fatal("out-of-range prefix length must report zero")
	}
	tb.DetachPIT(a)
	if tb.LenPIT() != 1 || tb.PITLenAt(1) != 0 {
		t.Fatal("detach did not decrement length counts")
	}
	// Slices are retained across lifecycles.
	pf := b.PIT()
	pf.Faces = append(pf.Faces, FaceRec{Face: 3, Token: 9})
	pf.Nonces = append(pf.Nonces, 77)
	tb.DetachPIT(b)
	pf2 := tb.AttachPIT(b)
	if len(pf2.Faces) != 0 || len(pf2.Nonces) != 0 {
		t.Fatal("facet slices not length-reset on reattach")
	}
	if cap(pf2.Faces) == 0 || cap(pf2.Nonces) == 0 {
		t.Fatal("facet slices lost their backing arrays")
	}
}

func TestCompositeEntryBothFacets(t *testing.T) {
	tb := New(PolicyLRU)
	e := tb.Put(name("/both"))
	tb.AttachPIT(e)
	tb.AttachCS(e, "data")
	if tb.Len() != 1 || tb.LenCS() != 1 || tb.LenPIT() != 1 {
		t.Fatalf("composite entry miscounted: %d/%d/%d", tb.Len(), tb.LenCS(), tb.LenPIT())
	}
	tb.DetachPIT(e)
	tb.ReleaseIfEmpty(e)
	if tb.Get(name("/both")) != e || e.CS() == nil {
		t.Fatal("CS facet lost when PIT facet detached")
	}
}

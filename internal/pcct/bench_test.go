package pcct

import (
	"fmt"
	"testing"

	"ndnprivacy/internal/ndn"
)

func benchNames(n int) []ndn.Name {
	names := make([]ndn.Name, n)
	for i := range names {
		names[i] = ndn.MustParseName(fmt.Sprintf("/site/%d/obj/%d", i%17, i))
	}
	return names
}

// BenchmarkPCCTNameInsert is the composite-table equivalent of
// ndn.BenchmarkNameKeyMapInsert: index the same 1000 names, but into
// the open-addressing table keyed by precomputed rolling hashes instead
// of a map[string] re-hashing every URI. Entries are released outside
// the timer, so steady-state inserts come from the free list.
func BenchmarkPCCTNameInsert(b *testing.B) {
	names := benchNames(1000)
	tb := New(PolicyLRU)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for i := range names {
			tb.Put(names[i])
		}
		b.StopTimer()
		for i := range names {
			if e := tb.Get(names[i]); e != nil {
				tb.ReleaseIfEmpty(e)
			}
		}
		b.StartTimer()
	}
}

// BenchmarkPCCTLookupHit measures the one-probe exact lookup over a
// populated table — the per-interest cost of the fused fast path.
func BenchmarkPCCTLookupHit(b *testing.B) {
	names := benchNames(1000)
	tb := New(PolicyLRU)
	for i := range names {
		tb.Put(names[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if tb.Get(names[n%len(names)]) == nil {
			b.Fatal("miss")
		}
	}
}

// BenchmarkPCCTChurn measures steady-state insert+release cycling
// through the free list and backward-shift deletion.
func BenchmarkPCCTChurn(b *testing.B) {
	names := benchNames(1024)
	tb := New(PolicyLRU)
	for i := 0; i < 512; i++ {
		tb.Put(names[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		idx := n % 512
		if e := tb.Get(names[idx]); e != nil {
			tb.ReleaseIfEmpty(e)
		}
		tb.Put(names[idx+512])
		if e := tb.Get(names[idx+512]); e != nil {
			tb.ReleaseIfEmpty(e)
		}
		tb.Put(names[idx])
	}
}

// BenchmarkPCCTCSAttach measures the full CS-facet cycle: table insert,
// policy-list insert, prefix-index insert, then detach and release —
// the structural cost of one cache insert-evict pair without payload
// cloning.
func BenchmarkPCCTCSAttach(b *testing.B) {
	names := benchNames(256)
	tb := New(PolicyLRU)
	for i := range names {
		e := tb.Put(names[i])
		tb.AttachCS(e, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		v := tb.CSVictim()
		tb.DetachCS(v)
		tb.ReleaseIfEmpty(v)
		e := tb.Put(names[n%len(names)])
		if e.CS() == nil {
			tb.AttachCS(e, n)
		}
	}
}

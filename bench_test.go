// Benchmark harness: one benchmark per paper table/figure (see
// DESIGN.md's per-experiment index). Each benchmark regenerates its
// artifact at a reduced scale and reports the experiment's headline
// metric alongside the usual time/allocation numbers, so
// `go test -bench=. -benchmem` doubles as the reproduction run.
package ndnprivacy_test

import (
	"testing"
	"time"

	"ndnprivacy/internal/attack"
	"ndnprivacy/internal/experiments"
)

// benchObjects/benchRuns scale the Figure 3 scenarios per iteration.
const (
	benchObjects = 60
	benchRuns    = 2
)

func fig3cfg(seed int64) experiments.Figure3Config {
	return experiments.Figure3Config{Seed: seed, Objects: benchObjects, Runs: benchRuns}
}

// BenchmarkFigure3aLAN regenerates Figure 3(a): LAN hit/miss RTT PDFs
// and the adversary's distinguishing probability (paper: >99.9%).
func BenchmarkFigure3aLAN(b *testing.B) {
	acc := 0.0
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3a(fig3cfg(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		acc = res.Result.Accuracy
	}
	b.ReportMetric(acc, "accuracy")
}

// BenchmarkFigure3bWAN regenerates Figure 3(b) (paper: >99%).
func BenchmarkFigure3bWAN(b *testing.B) {
	acc := 0.0
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3b(fig3cfg(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		acc = res.Result.Accuracy
	}
	b.ReportMetric(acc, "accuracy")
}

// BenchmarkFigure3cProducer regenerates Figure 3(c): producer privacy,
// weak single-probe signal (paper: ≈59%).
func BenchmarkFigure3cProducer(b *testing.B) {
	acc := 0.0
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3c(fig3cfg(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		acc = res.Result.Accuracy
	}
	b.ReportMetric(acc, "accuracy")
}

// BenchmarkFigure3dLocal regenerates Figure 3(d): local-host cache
// probing by a malicious application.
func BenchmarkFigure3dLocal(b *testing.B) {
	acc := 0.0
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3d(fig3cfg(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		acc = res.Result.Accuracy
	}
	b.ReportMetric(acc, "accuracy")
}

// BenchmarkSegmentAmplification regenerates the in-text result
// Pr[SUCCESS] = 1 − 0.41^n (paper: ≈0.999 at n = 8).
func BenchmarkSegmentAmplification(b *testing.B) {
	success := 0.0
	for i := 0; i < b.N; i++ {
		rows := experiments.SegmentAmplification(0.59, 8)
		success = rows[len(rows)-1].Success
	}
	b.ReportMetric(success, "success@8")
}

// BenchmarkFigure4aUtility regenerates Figure 4(a): utility vs privacy
// for both Random-Cache schemes at δ = 0.05, k ∈ {1, 5}.
func BenchmarkFigure4aUtility(b *testing.B) {
	gap := 0.0
	for i := 0; i < b.N; i++ {
		for _, k := range []uint64{1, 5} {
			res, err := experiments.Figure4a(k, 0.05, []float64{0.03, 0.04, 0.05}, 100)
			if err != nil {
				b.Fatal(err)
			}
			gap = res.Expo[0].Values[99] - res.Uniform.Values[99]
		}
	}
	b.ReportMetric(gap, "expo-uni@c=100")
}

// BenchmarkFigure4bDifference regenerates Figure 4(b): the maximal
// utility difference at ε = −ln(1−δ) (paper: up to ≈0.12).
func BenchmarkFigure4bDifference(b *testing.B) {
	peak := 0.0
	for i := 0; i < b.N; i++ {
		for _, k := range []uint64{1, 5} {
			res, err := experiments.Figure4b(k, []float64{0.01, 0.03, 0.05}, 100)
			if err != nil {
				b.Fatal(err)
			}
			if p := res.MaxDifference(len(res.Diffs) - 1); p > peak {
				peak = p
			}
		}
	}
	b.ReportMetric(peak, "peak-diff")
}

// BenchmarkFigure5aAlgorithms regenerates Figure 5(a): trace-driven hit
// rates for all four algorithms across the cache-size sweep.
func BenchmarkFigure5aAlgorithms(b *testing.B) {
	spread := 0.0
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5a(experiments.Figure5Config{Seed: int64(i + 1), Requests: 20000})
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := 100.0, 0.0
		for _, row := range res.Rows {
			if row.CacheSize != 0 {
				continue
			}
			if row.HitRate < lo {
				lo = row.HitRate
			}
			if row.HitRate > hi {
				hi = row.HitRate
			}
		}
		spread = hi - lo
	}
	b.ReportMetric(spread, "privacy-cost-pp@Inf")
}

// BenchmarkFigure5bPrivateFraction regenerates Figure 5(b): the
// Exponential-Random-Cache private-fraction sweep.
func BenchmarkFigure5bPrivateFraction(b *testing.B) {
	drop := 0.0
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5b(experiments.Figure5Config{Seed: int64(i + 1), Requests: 20000}, nil)
		if err != nil {
			b.Fatal(err)
		}
		var h5, h40 float64
		for _, row := range res.Rows {
			if row.CacheSize != 0 {
				continue
			}
			switch row.Algorithm {
			case "5% Private":
				h5 = row.HitRate
			case "40% Private":
				h40 = row.HitRate
			}
		}
		drop = h5 - h40
	}
	b.ReportMetric(drop, "hit-drop-5to40-pp")
}

// BenchmarkCorrelationAttack regenerates the Section VI correlation
// attack (E10): ungrouped detection grows with the related-set size;
// grouped stays flat.
func BenchmarkCorrelationAttack(b *testing.B) {
	gap := 0.0
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunCorrelation(experiments.CorrelationConfig{
			Seed: int64(i + 1), Trials: 400,
		})
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		gap = last.UngroupedDetection - last.GroupedDetection
	}
	b.ReportMetric(gap, "detect-gap@n=32")
}

// BenchmarkLossRecovery regenerates the Section V-A loss-recovery
// demonstration (E11).
func BenchmarkLossRecovery(b *testing.B) {
	speedup := 0.0
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunLossRecovery(experiments.LossRecoveryConfig{
			Seed: int64(i + 1), Packets: 200,
		})
		if err != nil {
			b.Fatal(err)
		}
		var cached, bare float64
		for _, row := range res.Rows {
			if row.Caching {
				cached = row.RetryMeanMs
			} else {
				bare = row.RetryMeanMs
			}
		}
		if cached > 0 {
			speedup = bare / cached
		}
	}
	b.ReportMetric(speedup, "retry-speedup")
}

// BenchmarkScopeProbe regenerates the Section III scope-field probe
// (E12).
func BenchmarkScopeProbe(b *testing.B) {
	correct := 0.0
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunScopeProbe(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if !res.BeforePriming && res.AfterPriming {
			correct = 1
		}
	}
	b.ReportMetric(correct, "probe-correct")
}

// BenchmarkAblationEviction compares LRU/FIFO/LFU hit rates on the
// default workload (design-choice ablation from DESIGN.md).
func BenchmarkAblationEviction(b *testing.B) {
	lruEdge := 0.0
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunEvictionAblation(int64(i+1), 20000, nil)
		if err != nil {
			b.Fatal(err)
		}
		rates := make(map[string]float64)
		for _, row := range res.Rows {
			if row.CacheSize == 200 {
				rates[row.Policy] = row.HitRate
			}
		}
		lruEdge = rates["lru"] - rates["fifo"]
	}
	b.ReportMetric(lruEdge, "lru-vs-fifo-pp")
}

// BenchmarkAblationDelayStrategy quantifies the Section V-B delay
// strategy trade-off (design-choice ablation from DESIGN.md).
func BenchmarkAblationDelayStrategy(b *testing.B) {
	penalty := 0.0
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunDelayStrategyAblation(20 * time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Strategy == "constant" {
				penalty = row.NearPenaltyMs
			}
		}
	}
	b.ReportMetric(penalty, "const-near-penalty-ms")
}

// BenchmarkDelayPlacement regenerates the footnote-6 placement study
// (E14): consumer-facing-only delaying vs delaying everywhere.
func BenchmarkDelayPlacement(b *testing.B) {
	latencyGap := 0.0
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunDelayPlacement(experiments.PlacementConfig{
			Seed: int64(i + 1), Objects: 40,
		})
		if err != nil {
			b.Fatal(err)
		}
		var consumer, all experiments.PlacementRow
		for _, row := range res.Rows {
			switch row.Policy {
			case "consumer-facing":
				consumer = row
			case "all":
				all = row
			}
		}
		latencyGap = all.InteriorHitLatencyMs - consumer.InteriorHitLatencyMs
	}
	b.ReportMetric(latencyGap, "interior-latency-cost-ms")
}

// BenchmarkConversationDetection regenerates the Section I two-party
// conversation-detection claim and its Section V-A defeat (E13).
func BenchmarkConversationDetection(b *testing.B) {
	gap := 0.0
	for i := 0; i < b.N; i++ {
		res, err := attack.RunConversationDetection(attack.ConversationConfig{
			Seed: int64(i + 1), Frames: 10, Trials: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		gap = res.PlainAccuracy - res.ProtectedAccuracy
	}
	b.ReportMetric(gap, "plain-minus-protected")
}

// BenchmarkCountermeasureResidualAccuracy measures how far each
// Section V countermeasure pushes the LAN adversary back toward a coin
// flip (ties Figure 3 to Section V).
func BenchmarkCountermeasureResidualAccuracy(b *testing.B) {
	residual := 1.0
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunCountermeasures(experiments.Figure3Config{
			Seed: int64(i + 1), Objects: 40, Runs: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows[1:] {
			if row.Accuracy < residual {
				residual = row.Accuracy
			}
		}
	}
	b.ReportMetric(residual, "best-residual-accuracy")
}

// Command ndnsim runs the paper's timing-attack experiments (Figure 3),
// the in-text multi-segment amplification, the scope-field probe, the
// Section VI correlation attack, the Section V-A loss-recovery
// demonstration, the countermeasure comparison, the Section I
// conversation-detection attack, and the footnote-6 delay-placement
// study.
//
// Usage:
//
//	ndnsim -fig 3a|3b|3c|3d|seg|scope|corr|loss|counter|conv|place|tier|all
//	       [-objects N] [-runs N] [-seed S] [-parallel N] [-json]
//	       [-metrics FILE] [-trace FILE] [-spans FILE]
//	       [-profile FILE] [-selfprofile N]
//
// The paper's scale is -objects 1000 -runs 50; defaults are smaller so a
// full sweep finishes in seconds. With -json, structured results are
// written to stdout instead of rendered tables. -parallel runs each
// experiment's independent trials on a worker pool; every output —
// tables, JSON, metrics, traces — is byte-identical for any value
// because per-trial seeds are derived from the experiment seed and the
// trial's grid labels, and per-trial telemetry merges in grid order.
//
// -metrics writes a snapshot of every counter/gauge/histogram the
// figure-3 simulations touched (Prometheus text exposition, or a JSON
// document when FILE ends in .json). -trace streams an NDJSON event
// record per forwarding decision, cache transition, countermeasure coin,
// and adversary probe, stamped with virtual time. Both outputs are
// byte-identical across runs with the same seed.
//
// -spans records causal interest-lifecycle spans for the figure-3
// simulations: one root span per consumer-admitted interest plus child
// spans for forwarder hops, link traversals, PIT aggregation, cache
// lookups and countermeasure decisions, all in deterministic virtual
// time. FILE ending in .json selects Chrome trace_event form (open it
// in Perfetto or chrome://tracing); anything else writes NDJSON. Span
// output is byte-identical across runs with the same seed and any
// -parallel value.
//
// -profile writes a CPU profile of the whole invocation; per-cell
// pprof labels ("sweep_cell") attribute samples to grid cells.
// -selfprofile N samples the simulator event loop every Nth event
// (wall time and allocations per event kind and scenario phase) and
// prints the table to stderr; it observes wall-clock cost only and
// never perturbs virtual-time results.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"ndnprivacy/internal/attack"
	"ndnprivacy/internal/experiments"
	"ndnprivacy/internal/netsim"
	"ndnprivacy/internal/telemetry"
	"ndnprivacy/internal/telemetry/span"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "ndnsim: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	fig := flag.String("fig", "all", "experiment: 3a, 3b, 3c, 3d, seg, scope, corr, loss, counter, conv, place, tier, all")
	objects := flag.Int("objects", 200, "content objects per run (paper: 1000)")
	runs := flag.Int("runs", 5, "repetitions with a fresh cache (paper: 50)")
	seed := flag.Int64("seed", 1, "experiment seed")
	jsonMode := flag.Bool("json", false, "emit structured JSON instead of tables")
	paper := flag.Bool("paper", false, "run at the paper's scale (-objects 1000 -runs 50)")
	metricsPath := flag.String("metrics", "", "write a metrics snapshot of the figure-3 simulations (.json → JSON, else Prometheus text)")
	tracePath := flag.String("trace", "", "write an NDJSON virtual-time event trace of the figure-3 simulations")
	spansPath := flag.String("spans", "", "write interest-lifecycle spans of the figure-3 simulations (.json → Chrome trace_event, else NDJSON)")
	profilePath := flag.String("profile", "", "write a CPU profile of the whole invocation (go tool pprof; sweep cells carry pprof labels)")
	selfProfile := flag.Int("selfprofile", 0, "sample the simulator event loop every Nth event and print per-kind/per-phase cost to stderr (0 = off)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size for independent trials (output is identical for any value)")
	flag.Parse()
	if *paper {
		*objects, *runs = 1000, 50
	}
	if *profilePath != "" {
		profFile, err := os.Create(*profilePath)
		if err != nil {
			return err
		}
		defer profFile.Close()
		if err := pprof.StartCPUProfile(profFile); err != nil {
			return fmt.Errorf("profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	switch *fig {
	case "all", "3a", "3b", "3c", "3d", "seg", "scope", "corr", "loss", "counter", "conv", "place", "tier":
	default:
		return fmt.Errorf("unknown -fig %q", *fig)
	}

	cfg := experiments.Figure3Config{Seed: *seed, Objects: *objects, Runs: *runs, Parallel: *parallel}

	var reg *telemetry.Registry
	if *metricsPath != "" {
		reg = telemetry.NewRegistry()
	}
	var tracer *telemetry.TraceWriter
	var sink telemetry.Sink
	if *tracePath != "" {
		traceFile, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		defer traceFile.Close()
		tracer = telemetry.NewTraceWriter(traceFile)
		sink = tracer
	}
	var spanTracer *span.Tracer
	if *spansPath != "" {
		spanTracer = span.NewTracer(*seed)
	}
	var profiler *netsim.Profiler
	if *selfProfile > 0 {
		profiler = netsim.NewProfiler(*selfProfile)
		cfg.Observe = func(run int, sim *netsim.Simulator) {
			sim.SetProfiler(profiler)
		}
	}
	// The sweep engine gives each run a private registry and trace
	// buffer and merges them here in run order, so these outputs stay
	// byte-identical at any -parallel value.
	cfg.Metrics = reg
	cfg.Trace = sink
	cfg.Spans = spanTracer
	all := *fig == "all"
	report := experiments.NewReporter(os.Stdout, *jsonMode)

	if all || *fig == "3a" {
		res, err := experiments.Figure3a(cfg)
		if err != nil {
			return err
		}
		report.Add("figure3a", res)
	}
	if all || *fig == "3b" {
		res, err := experiments.Figure3b(cfg)
		if err != nil {
			return err
		}
		report.Add("figure3b", res)
	}
	producerAccuracy := 0.59 // paper value, replaced by measurement when 3c runs
	if all || *fig == "3c" || *fig == "seg" {
		res, err := experiments.Figure3c(cfg)
		if err != nil {
			return err
		}
		producerAccuracy = res.Result.Accuracy
		if all || *fig == "3c" {
			report.Add("figure3c", res)
		}
	}
	if all || *fig == "3d" {
		res, err := experiments.Figure3d(cfg)
		if err != nil {
			return err
		}
		report.Add("figure3d", res)
	}
	if all || *fig == "seg" {
		rows := experiments.SegmentAmplification(producerAccuracy, 8)
		report.Add("segment-amplification", experiments.SegmentResult{SingleProbe: producerAccuracy, Rows: rows})
	}
	if all || *fig == "scope" {
		res, err := experiments.RunScopeProbe(*seed)
		if err != nil {
			return err
		}
		report.Add("scope-probe", res)
	}
	if all || *fig == "corr" {
		res, err := experiments.RunCorrelation(experiments.CorrelationConfig{Seed: *seed, Parallel: *parallel})
		if err != nil {
			return err
		}
		report.Add("correlation", res)
	}
	if all || *fig == "loss" {
		res, err := experiments.RunLossRecovery(experiments.LossRecoveryConfig{Seed: *seed, Parallel: *parallel})
		if err != nil {
			return err
		}
		report.Add("loss-recovery", res)
	}
	if all || *fig == "counter" {
		res, err := experiments.RunCountermeasures(cfg)
		if err != nil {
			return err
		}
		report.Add("countermeasures", res)
	}
	if all || *fig == "place" {
		res, err := experiments.RunDelayPlacement(experiments.PlacementConfig{Seed: *seed, Objects: *objects / 4, Parallel: *parallel})
		if err != nil {
			return err
		}
		report.Add("delay-placement", res)
	}
	if all || *fig == "tier" {
		res, err := experiments.RunTieredTiming(cfg)
		if err != nil {
			return err
		}
		report.Add("tiered-timing", res)
	}
	if all || *fig == "conv" {
		res, err := attack.RunConversationDetection(attack.ConversationConfig{Seed: *seed, Parallel: *parallel})
		if err != nil {
			return err
		}
		report.Add("conversation-detection", res)
	}
	if err := report.Flush(); err != nil {
		return err
	}
	if tracer != nil {
		if err := tracer.Flush(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	if reg != nil {
		if err := reg.Snapshot().WriteFile(*metricsPath); err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
	}
	if spanTracer != nil {
		if err := span.WriteFile(*spansPath, spanTracer.Records()); err != nil {
			return fmt.Errorf("spans: %w", err)
		}
	}
	if profiler != nil {
		fmt.Fprint(os.Stderr, profiler.Render())
	}
	return nil
}

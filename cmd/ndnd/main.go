// Command ndnd is a small NDN forwarding daemon: the library's Content
// Store, PIT, FIB and privacy-preserving cache management running over
// real TCP connections. It exists to show the stack is a usable network
// component, not only a simulator substrate.
//
// Usage:
//
//	ndnd -listen :6363 [-capacity 4096] [-manager none|delay|random]
//	     [-route /prefix=host:port ...] [-k 5] [-eps 0.005]
//	     [-tier-dir DIR] [-tier-capacity N]
//
// Each -route dials the given upstream and installs a FIB entry for the
// prefix. Consumers connect to the listen address; their interests are
// answered from the cache (subject to the selected privacy policy) or
// forwarded along routes.
//
// With -tier-dir the Content Store becomes two-tiered: -capacity bounds
// the RAM front and objects evicted from it demote to an append-log
// file store under DIR (crash-tolerant: a torn tail is truncated on
// reopen). -tier-capacity bounds the disk tier's object count
// (0 = unlimited). Serving from the disk tier costs a real file read,
// so a tiered daemon exhibits the three-way RAM-hit/disk-hit/miss
// timing channel the simulator experiments measure.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"ndnprivacy/internal/cache"
	"ndnprivacy/internal/cache/tiered"
	"ndnprivacy/internal/core"
	"ndnprivacy/internal/fwd"
	"ndnprivacy/internal/ndn"
	"ndnprivacy/internal/netface"
	"ndnprivacy/internal/rt"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "ndnd: %v\n", err)
		os.Exit(1)
	}
}

// routeFlags accumulates repeated -route prefix=addr flags.
type routeFlags []routeSpec

type routeSpec struct {
	prefix ndn.Name
	addr   string
}

func (r *routeFlags) String() string {
	parts := make([]string, 0, len(*r))
	for _, spec := range *r {
		parts = append(parts, spec.prefix.String()+"="+spec.addr)
	}
	return strings.Join(parts, ",")
}

func (r *routeFlags) Set(value string) error {
	prefixStr, addr, found := strings.Cut(value, "=")
	if !found {
		return fmt.Errorf("route %q must be /prefix=host:port", value)
	}
	prefix, err := ndn.ParseName(prefixStr)
	if err != nil {
		return err
	}
	*r = append(*r, routeSpec{prefix: prefix, addr: addr})
	return nil
}

func buildManager(kind string, k uint64, eps float64, exec *rt.Executor) (core.CacheManager, error) {
	switch kind {
	case "none":
		return nil, nil //nolint:nilnil // nil manager = NoPrivacy default
	case "delay":
		return core.NewDelayManager(core.NewContentSpecificDelay())
	case "random":
		alpha, err := core.GeometricAlphaForEpsilon(k, eps)
		if err != nil {
			return nil, err
		}
		dist, err := core.NewGeometricUnbounded(alpha)
		if err != nil {
			return nil, err
		}
		return core.NewRandomCache(dist, exec.Rand())
	default:
		return nil, fmt.Errorf("unknown -manager %q (none|delay|random)", kind)
	}
}

// buildStore assembles the daemon's Content Store: a flat LRU store, or
// — when tierDir is set — a tiered store whose RAM front holds capacity
// objects over a file-backed second tier logging to tierDir/cs.log.
// The returned closer releases the file tier (nil-safe no-op for the
// flat store).
func buildStore(capacity int, tierDir string, tierCapacity int) (cache.ContentStore, func() error, error) {
	if tierDir == "" {
		store, err := cache.NewStore(capacity, cache.NewLRU())
		if err != nil {
			return nil, nil, err
		}
		return store, func() error { return nil }, nil
	}
	if capacity <= 0 {
		return nil, nil, fmt.Errorf("-tier-dir needs a positive -capacity for the RAM front, got %d", capacity)
	}
	if err := os.MkdirAll(tierDir, 0o755); err != nil {
		return nil, nil, err
	}
	file, err := tiered.OpenFileTier(tiered.FileTierConfig{
		Path:     filepath.Join(tierDir, "cs.log"),
		Capacity: tierCapacity,
	})
	if err != nil {
		return nil, nil, err
	}
	store, err := tiered.New(tiered.Config{
		RAMCapacity: capacity,
		Second:      file,
	})
	if err != nil {
		file.Close() //nolint:errcheck // construction failed; best-effort release
		return nil, nil, err
	}
	return store, store.Close, nil
}

func run() error {
	listen := flag.String("listen", ":6363", "TCP listen address")
	capacity := flag.Int("capacity", 4096, "content store capacity (0 = unlimited; RAM-front size with -tier-dir)")
	managerKind := flag.String("manager", "delay", "cache privacy policy: none, delay, random")
	k := flag.Uint64("k", 5, "popularity threshold k for -manager random")
	eps := flag.Float64("eps", 0.005, "privacy parameter ε for -manager random")
	tierDir := flag.String("tier-dir", "", "directory for the file-backed second tier (empty = flat RAM-only store)")
	tierCapacity := flag.Int("tier-capacity", 0, "disk-tier object bound with -tier-dir (0 = unlimited)")
	var routes routeFlags
	flag.Var(&routes, "route", "upstream route /prefix=host:port (repeatable)")
	flag.Parse()

	exec := rt.New(int64(os.Getpid()))
	defer exec.Close()

	manager, err := buildManager(*managerKind, *k, *eps, exec)
	if err != nil {
		return err
	}
	store, closeStore, err := buildStore(*capacity, *tierDir, *tierCapacity)
	if err != nil {
		return err
	}
	defer func() {
		if err := closeStore(); err != nil {
			fmt.Fprintf(os.Stderr, "ndnd: store close: %v\n", err)
		}
	}()
	forwarder, err := fwd.New(fwd.Config{
		Name:    "ndnd",
		Sim:     exec,
		Store:   store,
		Manager: manager,
	})
	if err != nil {
		return err
	}

	for _, route := range routes {
		face, err := netface.Dial(forwarder, "tcp", route.addr, func(err error) {
			if err != nil {
				fmt.Fprintf(os.Stderr, "ndnd: upstream %s closed: %v\n", route.addr, err)
			}
		})
		if err != nil {
			return err
		}
		if err := netface.RunOn(forwarder, func() error {
			return forwarder.RegisterPrefix(route.prefix, face.ID())
		}); err != nil {
			return err
		}
		fmt.Printf("ndnd: route %s → %s\n", route.prefix, route.addr)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	listener, err := netface.Listen(forwarder, ln, func(face *netface.Face) {
		fmt.Printf("ndnd: face %d connected\n", face.ID())
	})
	if err != nil {
		return err
	}
	defer func() {
		if err := listener.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "ndnd: close: %v\n", err)
		}
	}()

	fmt.Printf("ndnd: listening on %s (capacity %d, manager %s)\n",
		listener.Addr(), *capacity, *managerKind)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("ndnd: shutting down")
	return nil
}

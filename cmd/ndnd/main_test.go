package main

import (
	"net"
	"testing"
	"time"

	"ndnprivacy/internal/cache/tiered"
	"ndnprivacy/internal/fwd"
	"ndnprivacy/internal/ndn"
	"ndnprivacy/internal/netface"
	"ndnprivacy/internal/rt"
)

func TestRouteFlagsParsing(t *testing.T) {
	var r routeFlags
	if err := r.Set("/p=127.0.0.1:6363"); err != nil {
		t.Fatal(err)
	}
	if err := r.Set("/cnn/news=upstream:1234"); err != nil {
		t.Fatal(err)
	}
	if len(r) != 2 {
		t.Fatalf("routes = %d", len(r))
	}
	if r[0].prefix.String() != "/p" || r[0].addr != "127.0.0.1:6363" {
		t.Errorf("route 0 = %+v", r[0])
	}
	if got := r.String(); got != "/p=127.0.0.1:6363,/cnn/news=upstream:1234" {
		t.Errorf("String() = %q", got)
	}
}

func TestRouteFlagsRejectsMalformed(t *testing.T) {
	var r routeFlags
	for _, bad := range []string{"no-equals", "not-a-prefix=host:1", "=host:1"} {
		if err := r.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
}

func TestBuildManager(t *testing.T) {
	exec := rt.New(1)
	defer exec.Close()
	cases := []struct {
		kind    string
		wantNil bool
		wantErr bool
	}{
		{"none", true, false},
		{"delay", false, false},
		{"random", false, false},
		{"bogus", false, true},
	}
	for _, tc := range cases {
		m, err := buildManager(tc.kind, 5, 0.005, exec)
		if tc.wantErr != (err != nil) {
			t.Errorf("%s: err = %v", tc.kind, err)
			continue
		}
		if err == nil && tc.wantNil != (m == nil) {
			t.Errorf("%s: manager = %v", tc.kind, m)
		}
	}
	if _, err := buildManager("random", 0, 0.005, exec); err == nil {
		t.Error("k=0 accepted for random manager")
	}
}

func TestBuildStoreValidation(t *testing.T) {
	if _, _, err := buildStore(0, t.TempDir(), 0); err == nil {
		t.Error("tiered store with capacity 0 accepted")
	}
	store, closer, err := buildStore(8, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if store == nil {
		t.Fatal("flat store missing")
	}
	if err := closer(); err != nil {
		t.Errorf("flat-store closer: %v", err)
	}
}

// TestTieredDaemonServesFromFileTier is the daemon e2e: a consumer and a
// producer talk to a file-tier-backed ndnd store over loopback TCP. The
// consumer populates the cache past the RAM front's capacity (evicting
// the first object to disk), then re-fetches it; the daemon must answer
// from the file tier without consulting the producer.
func TestTieredDaemonServesFromFileTier(t *testing.T) {
	exec := rt.New(9)
	t.Cleanup(exec.Close)
	store, closeStore, err := buildStore(2, t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := closeStore(); err != nil {
			t.Errorf("store close: %v", err)
		}
	})
	tieredStore, ok := store.(*tiered.Store)
	if !ok {
		t.Fatalf("buildStore with a tier dir returned %T, want *tiered.Store", store)
	}
	daemon, err := fwd.New(fwd.Config{Name: "ndnd", Sim: exec, Store: store})
	if err != nil {
		t.Fatal(err)
	}

	newPeer := func(name string) (*fwd.Forwarder, *rt.Executor) {
		peerExec := rt.New(int64(len(name)))
		t.Cleanup(peerExec.Close)
		peer, err := fwd.New(fwd.Config{Name: name, Sim: peerExec})
		if err != nil {
			t.Fatal(err)
		}
		return peer, peerExec
	}
	producerFwd, _ := newPeer("producer")
	consumerFwd, _ := newPeer("consumer")

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan *netface.Face, 2)
	listener, err := netface.Listen(daemon, ln, func(face *netface.Face) { accepted <- face })
	if err != nil {
		t.Fatal(err)
	}
	defer listener.Close()

	prefix := ndn.MustParseName("/p")
	producerSide, err := netface.Dial(producerFwd, "tcp", listener.Addr().String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer producerSide.Close()
	producerFace := <-accepted
	if err := netface.RunOn(daemon, func() error {
		return daemon.RegisterPrefix(prefix, producerFace.ID())
	}); err != nil {
		t.Fatal(err)
	}

	var producer *fwd.Producer
	if err := netface.RunOn(producerFwd, func() error {
		var err error
		producer, err = fwd.NewProducer(producerFwd, prefix, nil)
		if err != nil {
			return err
		}
		for _, suffix := range []string{"a", "b", "c"} {
			d, err := ndn.NewData(ndn.MustParseName("/p/"+suffix), []byte("payload "+suffix))
			if err != nil {
				return err
			}
			if err := producer.Publish(d); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	consumerSide, err := netface.Dial(consumerFwd, "tcp", listener.Addr().String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer consumerSide.Close()
	<-accepted
	var consumer *fwd.Consumer
	if err := netface.RunOn(consumerFwd, func() error {
		if err := consumerFwd.RegisterPrefix(prefix, consumerSide.ID()); err != nil {
			return err
		}
		var err error
		consumer, err = fwd.NewConsumer(consumerFwd)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	fetch := func(name string) fwd.FetchResult {
		t.Helper()
		interest := ndn.NewInterest(ndn.MustParseName(name), 0)
		interest.Lifetime = 2 * time.Second
		resCh := make(chan fwd.FetchResult, 1)
		consumer.Fetch(interest, func(r fwd.FetchResult) { resCh <- r })
		select {
		case res := <-resCh:
			if res.TimedOut {
				t.Fatalf("fetch %s timed out", name)
			}
			return res
		case <-time.After(4 * time.Second):
			t.Fatalf("fetch %s never resolved", name)
			return fwd.FetchResult{}
		}
	}

	// Populate: /p/a lands in the RAM front, then /p/b and /p/c overflow
	// it (capacity 2), demoting /p/a to the file tier.
	fetch("/p/a")
	fetch("/p/b")
	fetch("/p/c")
	storeState := func() (ramLen, diskLen int, diskHits, promotions, served uint64) {
		if err := netface.RunOn(daemon, func() error {
			ramLen, diskLen = tieredStore.RAMLen(), tieredStore.SecondLen()
			diskHits, promotions = tieredStore.DiskHits(), tieredStore.Promotions()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if err := netface.RunOn(producerFwd, func() error {
			served = producer.Served()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return
	}
	ramLen, diskLen, diskHits, _, served := storeState()
	if ramLen != 2 || diskLen != 1 {
		t.Fatalf("after populate: RAM %d / disk %d objects, want 2 / 1", ramLen, diskLen)
	}
	if diskHits != 0 {
		t.Fatalf("after populate: %d disk hits before the re-fetch", diskHits)
	}
	if served != 3 {
		t.Fatalf("after populate: producer served %d, want 3", served)
	}

	// The re-fetch must be answered from the file tier: same payload,
	// one disk hit and a promotion, and no fourth producer serve.
	res := fetch("/p/a")
	if string(res.Data.Payload) != "payload a" {
		t.Errorf("re-fetch payload = %q", res.Data.Payload)
	}
	_, _, diskHits, promotions, served := storeState()
	if diskHits != 1 || promotions != 1 {
		t.Errorf("re-fetch: %d disk hits / %d promotions, want 1 / 1", diskHits, promotions)
	}
	if served != 3 {
		t.Errorf("producer served %d interests, want 3 (file tier absorbed the re-fetch)", served)
	}
}

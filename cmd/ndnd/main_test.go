package main

import (
	"testing"

	"ndnprivacy/internal/rt"
)

func TestRouteFlagsParsing(t *testing.T) {
	var r routeFlags
	if err := r.Set("/p=127.0.0.1:6363"); err != nil {
		t.Fatal(err)
	}
	if err := r.Set("/cnn/news=upstream:1234"); err != nil {
		t.Fatal(err)
	}
	if len(r) != 2 {
		t.Fatalf("routes = %d", len(r))
	}
	if r[0].prefix.String() != "/p" || r[0].addr != "127.0.0.1:6363" {
		t.Errorf("route 0 = %+v", r[0])
	}
	if got := r.String(); got != "/p=127.0.0.1:6363,/cnn/news=upstream:1234" {
		t.Errorf("String() = %q", got)
	}
}

func TestRouteFlagsRejectsMalformed(t *testing.T) {
	var r routeFlags
	for _, bad := range []string{"no-equals", "not-a-prefix=host:1", "=host:1"} {
		if err := r.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
}

func TestBuildManager(t *testing.T) {
	exec := rt.New(1)
	defer exec.Close()
	cases := []struct {
		kind    string
		wantNil bool
		wantErr bool
	}{
		{"none", true, false},
		{"delay", false, false},
		{"random", false, false},
		{"bogus", false, true},
	}
	for _, tc := range cases {
		m, err := buildManager(tc.kind, 5, 0.005, exec)
		if tc.wantErr != (err != nil) {
			t.Errorf("%s: err = %v", tc.kind, err)
			continue
		}
		if err == nil && tc.wantNil != (m == nil) {
			t.Errorf("%s: manager = %v", tc.kind, m)
		}
	}
	if _, err := buildManager("random", 0, 0.005, exec); err == nil {
		t.Error("k=0 accepted for random manager")
	}
}

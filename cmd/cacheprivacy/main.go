// Command cacheprivacy regenerates the analytic Figure 4 panels — the
// privacy/utility trade-off of Uniform- versus Exponential-Random-Cache
// (Theorems VI.1–VI.4) — and prints the privacy bounds for arbitrary
// scheme parameters.
//
// Usage:
//
//	cacheprivacy -fig 4a|4b|all [-json]
//	cacheprivacy -bound -k 5 -eps 0.005 -delta 0.05
package main

import (
	"flag"
	"fmt"
	"os"

	"ndnprivacy/internal/core"
	"ndnprivacy/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "cacheprivacy: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	fig := flag.String("fig", "all", "figure: 4a, 4b, all")
	bound := flag.Bool("bound", false, "print privacy bounds and utility for -k/-eps/-delta instead of figures")
	k := flag.Uint64("k", 5, "popularity threshold k")
	eps := flag.Float64("eps", 0.005, "privacy parameter ε")
	delta := flag.Float64("delta", 0.05, "privacy parameter δ")
	maxC := flag.Uint64("maxc", 100, "largest request count c")
	jsonMode := flag.Bool("json", false, "emit structured JSON instead of tables")
	flag.Parse()

	if *bound {
		return printBounds(*k, *eps, *delta, *maxC)
	}

	switch *fig {
	case "all", "4a", "4b":
	default:
		return fmt.Errorf("unknown -fig %q", *fig)
	}
	all := *fig == "all"
	report := experiments.NewReporter(os.Stdout, *jsonMode)

	if all || *fig == "4a" {
		for _, kv := range []uint64{1, 5} {
			res, err := experiments.Figure4a(kv, 0.05, []float64{0.03, 0.04, 0.05}, *maxC)
			if err != nil {
				return err
			}
			report.Add(fmt.Sprintf("figure4a-k%d", kv), res)
		}
	}
	if all || *fig == "4b" {
		for _, kv := range []uint64{1, 5} {
			res, err := experiments.Figure4b(kv, []float64{0.01, 0.03, 0.05}, *maxC)
			if err != nil {
				return err
			}
			report.Add(fmt.Sprintf("figure4b-k%d", kv), res)
		}
	}
	return report.Flush()
}

func printBounds(k uint64, eps, delta float64, maxC uint64) error {
	uniDist, err := core.NewUniformForPrivacy(k, delta)
	if err != nil {
		return err
	}
	fmt.Printf("Uniform-Random-Cache with K=%d: %v\n", uniDist.DomainSize(), core.UniformPrivacy(k, uniDist.DomainSize()))
	expoDist, err := core.NewGeometricForPrivacy(k, eps, delta)
	if err != nil {
		return err
	}
	fmt.Printf("Exponential-Random-Cache %s: %v\n", expoDist.Name(),
		core.ExponentialPrivacy(k, expoDist.Alpha(), expoDist.DomainSize()))
	fmt.Printf("\n%8s  %18s  %18s\n", "c", "u(c) uniform", "u(c) exponential")
	for _, c := range []uint64{1, 2, 5, 10, 20, 50, maxC} {
		if c > maxC {
			continue
		}
		fmt.Printf("%8d  %18.4f  %18.4f\n", c, core.Utility(uniDist, c), core.Utility(expoDist, c))
	}
	return nil
}

// Command tracesim runs the Section VII trace-driven evaluation
// (Figure 5): it replays the synthetic IRCache-like workload through a
// consumer-facing router cache under the four cache-management
// algorithms and prints hit-rate tables, plus the eviction-policy and
// delay-strategy ablations.
//
// Usage:
//
//	tracesim -fig 5a|5b|ablate|all [-requests N] [-seed S]
//	         [-private 0.1] [-k 5] [-eps 0.005] [-parallel N] [-json]
//	         [-metrics FILE] [-trace FILE] [-spans FILE] [-profile FILE]
//
// The paper's scale is -requests 3200000; the default keeps a full sweep
// under a minute. -parallel replays independent grid cells on a worker
// pool; tables, metrics and traces are byte-identical for any value.
//
// A failed grid cell does not abort the sweep: the remaining cells
// still run, partial tables are printed, and every failure is reported
// at the end, with a non-zero exit only if at least one cell failed.
//
// -metrics writes a snapshot of the replayed caches' counters
// (Prometheus text exposition, or JSON when FILE ends in .json);
// -trace streams an NDJSON record per cache insert/evict and
// countermeasure coin, labeled per (figure, algorithm, cache size)
// cell. Both apply to the 5a/5b replays and -squidlog runs.
//
// -spans records cache-residency spans (entry insert → eviction, in
// deterministic virtual time) for the 5a/5b grid cells, merged in grid
// order; FILE ending in .json selects Chrome trace_event form, else
// NDJSON. -profile writes a CPU profile of the whole invocation with
// per-cell "sweep_cell" pprof labels.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"ndnprivacy/internal/core"
	"ndnprivacy/internal/experiments"
	"ndnprivacy/internal/sweep"
	"ndnprivacy/internal/telemetry"
	"ndnprivacy/internal/telemetry/span"
	"ndnprivacy/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "tracesim: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	fig := flag.String("fig", "all", "experiment: 5a, 5b, ablate, all")
	requests := flag.Int("requests", 200000, "trace length (paper: 3200000)")
	seed := flag.Int64("seed", 1, "workload seed")
	private := flag.Float64("private", 0.1, "private content fraction for 5a")
	k := flag.Uint64("k", 5, "popularity threshold k (paper: 5)")
	eps := flag.Float64("eps", 0.005, "privacy parameter ε (paper: 0.005)")
	jsonMode := flag.Bool("json", false, "emit structured JSON instead of tables")
	squidLog := flag.String("squidlog", "", "replay a real Squid/IRCache access log instead of the synthetic trace")
	cacheSize := flag.Int("cache", 2000, "cache size for -squidlog replay (0 = unlimited)")
	metricsPath := flag.String("metrics", "", "write a metrics snapshot of the replayed caches (.json → JSON, else Prometheus text)")
	tracePath := flag.String("trace", "", "write an NDJSON event trace of the replayed caches")
	spansPath := flag.String("spans", "", "write cache-residency spans of the 5a/5b replays (.json → Chrome trace_event, else NDJSON)")
	profilePath := flag.String("profile", "", "write a CPU profile of the whole invocation (go tool pprof; grid cells carry pprof labels)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size for independent grid cells (output is identical for any value)")
	flag.Parse()

	if *profilePath != "" {
		profFile, err := os.Create(*profilePath)
		if err != nil {
			return err
		}
		defer profFile.Close()
		if err := pprof.StartCPUProfile(profFile); err != nil {
			return fmt.Errorf("profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	var reg *telemetry.Registry
	if *metricsPath != "" {
		reg = telemetry.NewRegistry()
	}
	var tracer *telemetry.TraceWriter
	var sink telemetry.Sink
	if *tracePath != "" {
		traceFile, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		defer traceFile.Close()
		tracer = telemetry.NewTraceWriter(traceFile)
		sink = tracer
	}
	var spanTracer *span.Tracer
	if *spansPath != "" {
		spanTracer = span.NewTracer(*seed)
	}
	finishTelemetry := func() error {
		if tracer != nil {
			if err := tracer.Flush(); err != nil {
				return fmt.Errorf("trace: %w", err)
			}
		}
		if reg != nil {
			if err := reg.Snapshot().WriteFile(*metricsPath); err != nil {
				return fmt.Errorf("metrics: %w", err)
			}
		}
		if spanTracer != nil {
			if err := span.WriteFile(*spansPath, spanTracer.Records()); err != nil {
				return fmt.Errorf("spans: %w", err)
			}
		}
		return nil
	}

	if *squidLog != "" {
		if err := replaySquid(*squidLog, *cacheSize, *private, *seed, *k, *eps, reg, sink); err != nil {
			return err
		}
		return finishTelemetry()
	}

	switch *fig {
	case "all", "5a", "5b", "ablate":
	default:
		return fmt.Errorf("unknown -fig %q", *fig)
	}

	cfg := experiments.Figure5Config{
		Seed:            *seed,
		Requests:        *requests,
		K:               *k,
		Epsilon:         *eps,
		PrivateFraction: *private,
		Parallel:        *parallel,
		Metrics:         reg,
		Trace:           sink,
		Spans:           spanTracer,
	}
	all := *fig == "all"
	report := experiments.NewReporter(os.Stdout, *jsonMode)

	// Cell failures are collected, not fatal: the partial tables still
	// print, and the failures are reported together at the end.
	var cellFailures []sweep.CellError
	collect := func(name string, err error) error {
		if err == nil {
			return nil
		}
		var sweepErrs *sweep.Errors
		if errors.As(err, &sweepErrs) {
			for _, ce := range sweepErrs.Cells {
				fmt.Fprintf(os.Stderr, "tracesim: %s: %v\n", name, ce)
			}
			cellFailures = append(cellFailures, sweepErrs.Cells...)
			return nil
		}
		return err
	}

	if all || *fig == "5a" {
		res, err := experiments.Figure5a(cfg)
		if err = collect("figure5a", err); err != nil {
			return err
		}
		report.Add("figure5a", res)
	}
	if all || *fig == "5b" {
		res, err := experiments.Figure5b(cfg, nil)
		if err = collect("figure5b", err); err != nil {
			return err
		}
		report.Add("figure5b", res)
	}
	if all || *fig == "ablate" {
		res, err := experiments.RunEvictionAblationSweep(experiments.AblationConfig{
			Seed:     *seed,
			Requests: *requests / 4,
			Parallel: *parallel,
		})
		if err = collect("ablation-eviction", err); err != nil {
			return err
		}
		if res != nil {
			report.Add("ablation-eviction", res)
		}
		delays, err := experiments.RunDelayStrategyAblation(0)
		if err != nil {
			return err
		}
		report.Add("ablation-delay-strategy", delays)
	}
	if err := report.Flush(); err != nil {
		return err
	}
	if err := finishTelemetry(); err != nil {
		return err
	}
	if len(cellFailures) > 0 {
		return fmt.Errorf("%d grid cell(s) failed (results above are partial)", len(cellFailures))
	}
	return nil
}

// replaySquid runs a real proxy log through all four Section VII
// algorithms at one cache size and prints the hit rates.
func replaySquid(path string, cacheSize int, private float64, seed int64, k uint64, eps float64, reg *telemetry.Registry, sink telemetry.Sink) error {
	algorithms := []struct {
		name  string
		build func() (core.CacheManager, error)
	}{
		{"No Privacy", func() (core.CacheManager, error) { return core.NewNoPrivacy(), nil }},
		{"Always Delay Private Content", func() (core.CacheManager, error) {
			return core.NewDelayManager(core.NewContentSpecificDelay())
		}},
		{"Exponential-Random-Cache", func() (core.CacheManager, error) {
			alpha, err := core.GeometricAlphaForEpsilon(k, eps)
			if err != nil {
				return nil, err
			}
			dist, err := core.NewGeometricUnbounded(alpha)
			if err != nil {
				return nil, err
			}
			return core.NewRandomCache(dist, experiments.SeededRNG(seed))
		}},
	}
	fmt.Printf("replaying %s (cache %d, %.0f%% private, k=%d, ε=%g)\n", path, cacheSize, private*100, k, eps)
	for _, algo := range algorithms {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		manager, err := algo.build()
		if err != nil {
			_ = f.Close()
			return err
		}
		stats, err := trace.ReplaySquidLog(f, trace.SquidOptions{
			PrivateFraction: private,
			Seed:            seed,
		}, trace.ReplayConfig{
			CacheSize: cacheSize,
			Manager:   manager,
			Metrics:   reg,
			Trace:     sink,
			Node:      "squid/" + algo.name,
		})
		closeErr := f.Close()
		if err != nil {
			return err
		}
		if closeErr != nil {
			return closeErr
		}
		fmt.Printf("%-30s hit rate %6.2f%%  (%d requests, %d private)\n",
			algo.name, stats.HitRate(), stats.Requests, stats.PrivateRequests)
	}
	return nil
}

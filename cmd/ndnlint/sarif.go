package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"sort"

	"ndnprivacy/internal/lint"
)

// SARIF 2.1.0 output for GitHub code scanning. Only the subset the
// upload-sarif action consumes is emitted: one run, one rule per
// analyzer, one result per finding with a physical location relative
// to the working directory (the repo root in CI).

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
	Help             sarifMessage `json:"help,omitempty"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF renders findings as a SARIF log. Rules cover every check
// that was run (not just those that fired) so code scanning shows the
// full rule set; results reference rules by id.
func writeSARIF(w io.Writer, checks []*lint.Analyzer, findings []lint.Finding) error {
	rules := make([]sarifRule, 0, len(checks))
	for _, a := range checks {
		r := sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		}
		if a.Hint != "" {
			r.Help = sarifMessage{Text: "fix: " + a.Hint}
		}
		rules = append(rules, r)
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	cwd, _ := os.Getwd()
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		msg := f.Message
		if f.Hint != "" {
			msg += " (fix: " + f.Hint + ")"
		}
		results = append(results, sarifResult{
			RuleID:  f.Check,
			Level:   "error",
			Message: sarifMessage{Text: msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       sarifURI(cwd, f.File),
						URIBaseID: "SRCROOT",
					},
					Region: sarifRegion{
						StartLine:   f.Line,
						StartColumn: f.Column,
					},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "ndnlint",
				InformationURI: "https://github.com/ndnprivacy/ndnprivacy",
				Rules:          rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// sarifURI renders a finding's file path relative to base with forward
// slashes, as code scanning expects repo-relative artifact URIs.
func sarifURI(base, file string) string {
	if base != "" {
		if rel, err := filepath.Rel(base, file); err == nil && !filepath.IsAbs(rel) && rel != ".." && !hasDotDotPrefix(rel) {
			file = rel
		}
	}
	return filepath.ToSlash(file)
}

func hasDotDotPrefix(p string) bool {
	return len(p) >= 3 && p[:3] == ".."+string(filepath.Separator)
}

// Command ndnlint runs ndnprivacy's project-specific static analysis
// over the packages matching the given go-list patterns (default ./...):
// simulator determinism, seeded randomness, map-iteration order, lock
// copying, wire-format error hygiene, inferred mutex guard discipline,
// seed taint flow, shadowed errors, and duration unit provenance. See
// internal/lint for the individual checks and the //ndnlint:allow
// suppression syntax.
//
// Usage:
//
//	ndnlint [-json] [-sarif] [-list] [-c check[,check]] [packages...]
//
// Exit status is 0 when the tree is clean, 1 when findings were
// reported, and 2 when analysis itself failed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ndnprivacy/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	flags := flag.NewFlagSet("ndnlint", flag.ContinueOnError)
	jsonOut := flags.Bool("json", false, "emit findings as a JSON array for tooling")
	sarifOut := flags.Bool("sarif", false, "emit findings as SARIF 2.1.0 for code scanning")
	list := flags.Bool("list", false, "list available checks and exit")
	only := flags.String("c", "", "comma-separated checks to run (default: all)")
	if err := flags.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	checks := lint.All
	if *only != "" {
		checks = nil
		for _, name := range strings.Split(*only, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "ndnlint: unknown check %q (try -list)\n", name)
				return 2
			}
			checks = append(checks, a)
		}
	}

	pkgs, err := lint.Load("", flags.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ndnlint: %v\n", err)
		return 2
	}

	var findings []lint.Finding
	for _, pkg := range pkgs {
		findings = append(findings, pkg.Check(checks)...)
	}

	switch {
	case *sarifOut:
		if err := writeSARIF(os.Stdout, checks, findings); err != nil {
			fmt.Fprintf(os.Stderr, "ndnlint: %v\n", err)
			return 2
		}
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{} // emit [] rather than null
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "ndnlint: %v\n", err)
			return 2
		}
	default:
		for _, f := range findings {
			fmt.Println(f)
		}
	}

	if len(findings) > 0 {
		if !*jsonOut && !*sarifOut {
			fmt.Fprintf(os.Stderr, "ndnlint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		}
		return 1
	}
	return 0
}

// Command ndnlint runs ndnprivacy's project-specific static analysis
// over the packages matching the given go-list patterns (default ./...):
// simulator determinism, seeded randomness, map-iteration order, lock
// copying, wire-format error hygiene, inferred mutex guard discipline,
// seed taint flow, shadowed errors, duration unit provenance, the
// interprocedural //ndnlint:hotpath allocation check, and the viewsafe
// escape/retention analysis for //ndnlint:viewtype zero-copy wire views.
// See internal/lint for the individual checks and the //ndnlint:allow
// suppression syntax.
//
// Usage:
//
//	ndnlint [-json] [-sarif] [-list] [-checks check[,check]] [-allocreport] [packages...]
//
// -allocreport emits the machine-readable allocation budget for every
// annotated hot path (the committed ALLOC_BUDGET.json baseline) instead
// of findings.
//
// Exit status is 0 when the tree is clean, 1 when findings were
// reported, and 2 when analysis itself failed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ndnprivacy/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, stdout io.Writer) int {
	flags := flag.NewFlagSet("ndnlint", flag.ContinueOnError)
	jsonOut := flags.Bool("json", false, "emit findings as a JSON array for tooling")
	sarifOut := flags.Bool("sarif", false, "emit findings as SARIF 2.1.0 for code scanning")
	list := flags.Bool("list", false, "list available checks and exit")
	allocReport := flags.Bool("allocreport", false, "emit the hot-path allocation budget as JSON and exit")
	var only string
	flags.StringVar(&only, "checks", "", "comma-separated checks to run (default: all)")
	flags.StringVar(&only, "c", "", "shorthand for -checks")
	if err := flags.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	checks := lint.All
	if only != "" {
		checks = nil
		for _, name := range strings.Split(only, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "ndnlint: unknown check %q (try -list)\n", name)
				return 2
			}
			checks = append(checks, a)
		}
	}

	pkgs, err := lint.Load("", flags.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ndnlint: %v\n", err)
		return 2
	}

	if *allocReport {
		if len(pkgs) == 0 {
			fmt.Fprintln(os.Stderr, "ndnlint: no packages matched")
			return 2
		}
		budget := lint.BuildAllocBudget(pkgs[0].Fset, lint.Units(pkgs))
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(budget); err != nil {
			fmt.Fprintf(os.Stderr, "ndnlint: %v\n", err)
			return 2
		}
		return 0
	}

	// One whole-tree pass: interprocedural checks (alloccheck) follow
	// calls across package boundaries only when every package is
	// analyzed together.
	findings := lint.CheckAll(pkgs, checks)

	switch {
	case *sarifOut:
		if err := writeSARIF(stdout, checks, findings); err != nil {
			fmt.Fprintf(os.Stderr, "ndnlint: %v\n", err)
			return 2
		}
	case *jsonOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{} // emit [] rather than null
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "ndnlint: %v\n", err)
			return 2
		}
	default:
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}

	if len(findings) > 0 {
		if !*jsonOut && !*sarifOut {
			fmt.Fprintf(os.Stderr, "ndnlint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		}
		return 1
	}
	return 0
}

package ndnprivacy_test

import (
	"fmt"

	"ndnprivacy"
)

// The Section VI analysis is pure: pick privacy parameters, get the
// scheme and its utility.
func ExampleUtility() {
	// Exponential-Random-Cache tuned to (k=5, ε=0.005, δ=0.05)-privacy.
	dist, err := ndnprivacy.NewGeometricForPrivacy(5, 0.005, 0.05)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("u(1000) = %.3f\n", ndnprivacy.Utility(dist, 1000))
	fmt.Printf("u(5000) = %.3f\n", ndnprivacy.Utility(dist, 5000))
	// Output:
	// u(1000) = 0.902
	// u(5000) = 0.980
}

// Theorem VI.1: Uniform-Random-Cache with domain K is (k, 0, 2k/K)-private.
func ExampleUniformPrivacy() {
	fmt.Println(ndnprivacy.UniformPrivacy(5, 200))
	// Output:
	// (k=5, ε=0, δ=0.05)-privacy
}

// The Section III amplification: a weak per-segment probe becomes
// near-certain across an 8-segment content object.
func ExampleSegmentSuccessProbability() {
	for _, n := range []int{1, 2, 4, 8} {
		fmt.Printf("n=%d: %.4f\n", n, ndnprivacy.SegmentSuccessProbability(0.59, n))
	}
	// Output:
	// n=1: 0.5900
	// n=2: 0.8319
	// n=4: 0.9717
	// n=8: 0.9992
}

// Unpredictable names (Section V-A): both session parties derive the
// same per-frame name; nobody else can.
func ExampleSharedSecret() {
	alice, _ := ndnprivacy.NewSharedSecret([]byte("call-secret"))
	bob, _ := ndnprivacy.NewSharedSecret([]byte("call-secret"))
	base := ndnprivacy.MustParseName("/alice/voip")
	fmt.Println(alice.UnpredictableName(base, 7).Equal(bob.UnpredictableName(base, 7)))
	fmt.Println(alice.UnpredictableName(base, 7).Equal(alice.UnpredictableName(base, 8)))
	// Output:
	// true
	// false
}

// Names follow NDN's longest-prefix matching (Section II, footnote 2).
func ExampleName_IsPrefixOf() {
	interest := ndnprivacy.MustParseName("/cnn/news")
	content := ndnprivacy.MustParseName("/cnn/news/2013may20")
	fmt.Println(interest.IsPrefixOf(content))
	fmt.Println(content.IsPrefixOf(interest))
	// Output:
	// true
	// false
}

// URLToName bridges proxy-trace URLs into the NDN namespace.
func ExampleURLToName() {
	name, _ := ndnprivacy.URLToName("http://example.com:8080/videos/cat.avi")
	fmt.Println(name)
	// Output:
	// /web/example.com/videos/cat.avi
}

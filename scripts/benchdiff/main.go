// Command benchdiff gates benchmark regressions between per-PR snapshot
// files. It compares the two newest BENCH_PR<N>.json files (as written
// by scripts/bench.sh) and fails when a hot-path benchmark regressed:
// any increase in allocs/op, or a ns/op increase beyond the tolerance
// (default 25%). Non-hot-path benchmarks are reported but never gate —
// their cost is not part of the repo's timing-channel contract.
//
// Usage:
//
//	go run ./scripts/benchdiff [-dir .] [-ns-tol 0.25] [old.json new.json]
//
// With explicit file arguments the discovery step is skipped. Exit
// status is 1 when any gated regression is found, 0 otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// result mirrors one entry of a bench.sh snapshot.
type result struct {
	Suite  string   `json:"suite"`
	Name   string   `json:"name"`
	Iters  int64    `json:"iterations"`
	NsOp   *float64 `json:"ns_per_op"`
	BOp    *float64 `json:"bytes_per_op"`
	Allocs *float64 `json:"allocs_per_op"`
}

// hotpathPat selects the benchmarks that exercise //ndnlint:hotpath
// code — the zero-alloc, latency-contracted paths the paper's timing
// adversary measures. Only these gate the build.
var hotpathPat = regexp.MustCompile(
	`^Benchmark(` +
		`Store(ExactHit|ExactViewHit|PrefixMatch|InsertEvict|Churn)` +
		`|PCCT` +
		`|InterestPath` +
		`|ProbeWire` +
		`|PIT` +
		`|ParseNameView|InterestNameView|NameIsPrefixOf` +
		`|TieredExact` +
		`)`)

// procSuffix strips the trailing -<GOMAXPROCS> go test appends, so
// snapshots from machines with different core counts still line up.
var procSuffix = regexp.MustCompile(`-\d+$`)

func load(path string) (map[string]result, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []result
	if err := json.Unmarshal(raw, &rs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]result, len(rs))
	for _, r := range rs {
		name := procSuffix.ReplaceAllString(r.Name, "")
		r.Name = name
		out[r.Suite+"/"+name] = r
	}
	return out, nil
}

// newestPair finds the two BENCH_PR<N>.json files with the highest N.
func newestPair(dir string) (older, newer string, err error) {
	pat := regexp.MustCompile(`^BENCH_PR(\d+)\.json$`)
	type snap struct {
		n    int
		path string
	}
	var snaps []snap
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", "", err
	}
	for _, e := range entries {
		m := pat.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		snaps = append(snaps, snap{n: n, path: filepath.Join(dir, e.Name())})
	}
	if len(snaps) < 2 {
		return "", "", fmt.Errorf("need at least two BENCH_PR*.json snapshots in %s, found %d", dir, len(snaps))
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].n < snaps[j].n })
	return snaps[len(snaps)-2].path, snaps[len(snaps)-1].path, nil
}

func main() {
	dir := flag.String("dir", ".", "directory holding BENCH_PR*.json snapshots")
	nsTol := flag.Float64("ns-tol", 0.25, "allowed fractional ns/op increase on hot-path benchmarks")
	flag.Parse()

	var oldPath, newPath string
	switch flag.NArg() {
	case 0:
		var err error
		oldPath, newPath, err = newestPair(*dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
	case 2:
		oldPath, newPath = flag.Arg(0), flag.Arg(1)
	default:
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-dir .] [-ns-tol 0.25] [old.json new.json]")
		os.Exit(2)
	}

	oldRes, err := load(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newRes, err := load(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fmt.Printf("benchdiff: %s → %s (ns tolerance %+.0f%% on hot-path benchmarks)\n",
		oldPath, newPath, *nsTol*100)

	keys := make([]string, 0, len(newRes))
	for k := range newRes {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	failures := 0
	for _, k := range keys {
		nr := newRes[k]
		or, inOld := oldRes[k]
		hot := hotpathPat.MatchString(nr.Name)
		if !inOld {
			continue // new benchmark: nothing to regress against
		}
		var notes []string
		bad := false
		if or.Allocs != nil && nr.Allocs != nil && *nr.Allocs != *or.Allocs {
			notes = append(notes, fmt.Sprintf("allocs %g → %g", *or.Allocs, *nr.Allocs))
			if *nr.Allocs > *or.Allocs && hot {
				bad = true
			}
		}
		if or.NsOp != nil && nr.NsOp != nil && *or.NsOp > 0 {
			delta := (*nr.NsOp - *or.NsOp) / *or.NsOp
			if delta > *nsTol || delta < -*nsTol {
				notes = append(notes, fmt.Sprintf("ns/op %.0f → %.0f (%+.0f%%)", *or.NsOp, *nr.NsOp, delta*100))
			}
			if delta > *nsTol && hot {
				bad = true
			}
		}
		if len(notes) == 0 {
			continue
		}
		tag := "info"
		if bad {
			tag = "FAIL"
			failures++
		} else if hot {
			tag = "ok  "
		}
		fmt.Printf("  [%s] %s: %s\n", tag, k, joinNotes(notes))
	}
	// Hot-path benchmarks that disappeared are a gate too: a silently
	// dropped benchmark would hide any future regression.
	for k, or := range oldRes {
		if _, still := newRes[k]; !still && hotpathPat.MatchString(or.Name) {
			fmt.Printf("  [FAIL] %s: hot-path benchmark missing from new snapshot\n", k)
			failures++
		}
	}
	if failures > 0 {
		fmt.Printf("benchdiff: %d hot-path regression(s)\n", failures)
		os.Exit(1)
	}
	fmt.Println("benchdiff: no hot-path regressions")
}

func joinNotes(notes []string) string {
	out := notes[0]
	for _, n := range notes[1:] {
		out += ", " + n
	}
	return out
}

#!/usr/bin/env bash
# check.sh — the full verification gate: formatting, vet, build,
# project-specific static analysis (ndnlint), and race-enabled tests.
# CI runs exactly this script; run it locally before sending a PR.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== ndnlint"
go run ./cmd/ndnlint ./...

echo "== go test -race"
go test -race ./...

echo "check.sh: all gates passed"

#!/usr/bin/env bash
# bench.sh — run the benchmark suites that watch the simulator's hot
# paths (ndn wire handling, cache, forwarding, trace replay, core
# countermeasures, whole-tree alloccheck and viewsafe) and write a
# machine-readable summary.
#
# Usage:
#   scripts/bench.sh [output.json]
#
# Environment:
#   BENCHTIME  go test -benchtime value (default 1x: one iteration per
#              benchmark, a smoke run; use e.g. 2s locally for stable
#              numbers)
#   BENCH_OUT  default output filename when no argument is given
#
# Output: one JSON array of {suite, name, iterations, ns_per_op,
# bytes_per_op, allocs_per_op} objects in the repo root. The output name
# is per-PR (BENCH_PR10.json for this one) so BENCH_*.json snapshots
# accumulate into a perf trajectory instead of overwriting each other;
# CI pins the name explicitly via BENCH_OUT, and scripts/benchdiff gates
# hot-path regressions between the two newest committed snapshots.
# ns/B/allocs fields are null when a benchmark did not report them
# (e.g. without -benchmem equivalents in its output line).
#
# The experiments suite carries BenchmarkFigure5Sweep/{serial,parallel8}:
# the same grid replayed at -parallel 1 and 8, the sweep-engine
# scaling pair this file exists to track. The fwd suite carries the
# span-overhead pair BenchmarkEndToEndFetchHit{,Spans}: the same cached
# fetch with span tracing off and on, pinning the observability tax on
# the paper's timing signal. The cache/tiered suite watches the tiered
# Content Store: the 0-alloc RAM-front hit path, disk-hit promotion
# churn, and insert-demote movement; the stats suite carries the
# two-cut three-way classifier that turns those tiers into the
# RAM/disk/miss side channel.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-${BENCH_OUT:-BENCH_PR10.json}}"
benchtime="${BENCHTIME:-1x}"
suites=(ndn pcct cache cache/tiered table fwd trace core stats experiments lint)

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

for suite in "${suites[@]}"; do
    echo "== bench ./internal/${suite} (benchtime ${benchtime})" >&2
    go test -run='^$' -bench=. -benchmem -benchtime="$benchtime" \
        "./internal/${suite}" | awk -v suite="$suite" '
        /^Benchmark/ {
            name = $1; iters = $2
            ns = "null"; bytes = "null"; allocs = "null"
            for (i = 3; i < NF; i++) {
                if ($(i+1) == "ns/op")     ns = $i
                if ($(i+1) == "B/op")      bytes = $i
                if ($(i+1) == "allocs/op") allocs = $i
            }
            printf "{\"suite\":\"%s\",\"name\":\"%s\",\"iterations\":%s,\"ns_per_op\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s}\n", \
                suite, name, iters, ns, bytes, allocs
        }' >> "$tmp"
done

# Assemble the newline-delimited objects into one JSON array, one
# object per line so diffs against a previous run stay readable.
awk 'BEGIN { print "[" } { if (NR > 1) printf ",\n"; printf "%s", $0 } END { print "\n]" }' "$tmp" > "$out"

count=$(wc -l < "$tmp")
echo "bench.sh: wrote ${count} benchmark results to ${out}" >&2
if [[ "$count" -eq 0 ]]; then
    echo "bench.sh: no benchmarks ran — suite list stale?" >&2
    exit 1
fi

module ndnprivacy

go 1.22
